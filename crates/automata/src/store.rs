//! The interned language store: hash-consed DFAs + memoized operations.
//!
//! All [`Lang`] values are handles into one process-global store. The
//! store has two layers:
//!
//! 1. an [`Interner`] of canonical minimal DFAs (never cleared — ids stay
//!    valid for the life of the process), and
//! 2. a **memoized operation cache** keyed by `(op, lhs_id, rhs_id)` for
//!    binary operations (`rhs_id = u32::MAX` for unary ones), mapping to
//!    either a result language id or a decision-procedure boolean.
//!
//! The paper's algorithms (Props. 5.4/5.5, Cor. 5.8, Alg. 6.2) apply the
//! same small algebra to overlapping subexpressions over and over; with
//! the cache, each distinct `(op, operands)` pair pays the automaton
//! construction exactly once per process.
//!
//! [`Store`] itself is a copyable policy handle: [`Store::global`]
//! consults the cache, [`Store::uncached`] recomputes every operation
//! from the DFAs (still interning results, so cached and uncached results
//! remain comparable by id — that is the cross-check tests' lever).
//! Commutative operations (union, intersection) normalize their key so
//! `a ∪ b` and `b ∪ a` share one entry.
//!
//! ## Concurrency: sharded cache, read-mostly interner, atomic stats
//!
//! The daemon's worker pool drives this store from many threads at once,
//! and in the steady state nearly every call is a cache hit — so the
//! store must not serialize hits on one lock. Three mechanisms:
//!
//! * **Sharded op cache.** The memoized cache is split into
//!   [`SHARD_COUNT`] independently locked shards; a key's shard is a
//!   cheap multiplicative mix of `(op, lhs, rhs)`. Each shard carries its
//!   own generation stamp, its own slice of the configured capacity, and
//!   its own evicted-key ledger, so eviction runs per shard with no
//!   cross-shard coordination. Lock acquisitions that would block are
//!   counted per shard (`try_lock` first), surfacing contention in
//!   [`StoreStats::shards`].
//! * **Read-mostly interner.** Id → DFA resolution — the tail of every
//!   cache hit — reads a lock-free append-only table; interning probes
//!   under a read lock and takes the write lock only to append a new
//!   language (see [`intern`](crate::intern)).
//! * **Atomic statistics.** Per-op hit/miss counters and the
//!   eviction/sweep/re-miss counters are plain `AtomicU64`s (`Relaxed` —
//!   they are monotone telemetry, not synchronization), and each shard
//!   mirrors its entry count into an atomic gauge after every mutation.
//!   [`Store::stats`] therefore takes **no lock at all**: a daemon
//!   scraping `/metrics` never stalls the workers. Snapshots are
//!   per-counter consistent, not cross-counter consistent — a snapshot
//!   taken mid-operation may see the miss already counted and the insert
//!   not yet applied, which is fine for telemetry.
//!
//! The compute-outside-lock discipline is unchanged from the single-lock
//! design: concurrent threads may race-compute the same entry, which is
//! benign (both intern to the same id; the second insert overwrites with
//! an equal value).
//!
//! ## Eviction (long-running services)
//!
//! By default the op cache grows without bound — fine for CLI and bench
//! lifetimes. A long-running daemon sets a capacity with
//! [`Store::set_op_cache_capacity`], which switches the cache to a
//! **generation-based** policy, applied per shard: every entry is stamped
//! with its shard's current generation on insert and on each hit; when an
//! insert pushes a shard past its capacity share, a *sweep* evicts every
//! entry in that shard not touched in the current generation and then
//! advances the shard's generation. Entries in active use are re-stamped
//! on every hit and survive sweeps indefinitely; cold entries survive at
//! most one full generation of their shard. If a sweep cannot get below
//! the share (everything was touched recently), arbitrary surplus entries
//! are dropped so the configured bound is a hard ceiling. The total
//! capacity is split exactly across shards (`total/N` rounded, never
//! exceeding `total` in sum), so the global bound the daemon configures
//! is the global bound it gets; tiny capacities leave some shards with a
//! zero share, where inserts are immediately swept out — still recorded
//! in the ledger so the re-miss signal survives. Evictions, sweeps, and
//! *re-misses* (a miss on a key that was previously evicted — the cost
//! signal of an undersized cache) are reported in [`StoreStats`].
//! Eviction never touches the interner, so live [`Lang`] handles are
//! unaffected and re-computed results re-intern to their original ids.
//!
//! ## Lock poisoning
//!
//! Shard mutexes guard pure cache state (no invariants span a panic), so
//! every acquisition recovers from poisoning: a worker thread that panics
//! mid-operation must not wedge every subsequent extraction in a daemon
//! that keeps serving. The `store.evict.sweep` failpoint exists precisely
//! to inject such panics under test.

use crate::dfa::Dfa;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::intern::{Interner, LangId};
use crate::lang::Lang;
use crate::nfa::Nfa;
use rextract_faults::fail_point;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, TryLockError};

/// Operations the store memoizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    Union,
    Intersect,
    Difference,
    Concat,
    Complement,
    Star,
    Reverse,
    RightQuotient,
    LeftQuotient,
    IsEmpty,
    IsUniversal,
    IsSubset,
}

const OP_COUNT: usize = 12;

impl Op {
    fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name for stats rendering.
    pub fn name(self) -> &'static str {
        match self {
            Op::Union => "union",
            Op::Intersect => "intersect",
            Op::Difference => "difference",
            Op::Concat => "concat",
            Op::Complement => "complement",
            Op::Star => "star",
            Op::Reverse => "reverse",
            Op::RightQuotient => "right_quotient",
            Op::LeftQuotient => "left_quotient",
            Op::IsEmpty => "is_empty",
            Op::IsUniversal => "is_universal",
            Op::IsSubset => "is_subset",
        }
    }

    fn all() -> [Op; OP_COUNT] {
        [
            Op::Union,
            Op::Intersect,
            Op::Difference,
            Op::Concat,
            Op::Complement,
            Op::Star,
            Op::Reverse,
            Op::RightQuotient,
            Op::LeftQuotient,
            Op::IsEmpty,
            Op::IsUniversal,
            Op::IsSubset,
        ]
    }
}

/// Sentinel rhs for unary operations.
const NO_RHS: u32 = u32::MAX;

#[derive(Clone, Copy)]
enum CacheEntry {
    Lang(u32),
    Bool(bool),
}

type CacheKey = (Op, u32, u32);

/// A cached result stamped with the generation of its last use.
#[derive(Clone, Copy)]
struct CacheSlot {
    entry: CacheEntry,
    stamp: u64,
}

/// Number of op-cache shards. A power of two so routing is a mask; 16 is
/// comfortably above the daemon's worker-pool ceiling (8), so even a
/// fully loaded pool rarely has two workers wanting one shard at once,
/// while keeping per-shard capacity shares non-trivial for realistic
/// cache bounds (the daemon default of 16 384 gives each shard 1 024).
pub const SHARD_COUNT: usize = 16;

/// Sentinel for "unbounded" in the atomic capacity mirror.
const UNBOUNDED: usize = usize::MAX;

/// The mutable state of one op-cache shard.
struct ShardState {
    op_cache: FxHashMap<CacheKey, CacheSlot>,
    /// Per-op hit/miss tallies, updated under the shard lock (plain adds)
    /// and mirrored into the shard's atomics on every update — so the hot
    /// path pays a plain store instead of an atomic RMW, and `stats()`
    /// still reads without any lock.
    hits: [u64; OP_COUNT],
    misses: [u64; OP_COUNT],
    /// This shard's slice of the configured capacity (`None` = unbounded).
    capacity: Option<usize>,
    /// This shard's generation; advanced by every sweep of this shard.
    generation: u64,
    /// Keys evicted from this shard since the last reset, for re-miss
    /// attribution. Bounded: drained wholesale when it outgrows the shard
    /// share several times over, so re-miss counts are a (documented)
    /// lower bound, never a leak.
    evicted_keys: FxHashSet<CacheKey>,
}

/// One op-cache shard: a mutex over the map plus lock-free mirrors read
/// by the stats path. Cache-line aligned so shards do not false-share.
#[repr(align(64))]
struct Shard {
    state: Mutex<ShardState>,
    /// Entry-count gauge, updated after every mutation under the lock.
    len: AtomicUsize,
    /// Acquisitions that found the shard locked and had to block.
    contended: AtomicU64,
    /// Mirrors of `ShardState::{hits,misses}` — written (relaxed stores)
    /// only by the lock holder, read lock-free by `stats()`.
    hits: [AtomicU64; OP_COUNT],
    misses: [AtomicU64; OP_COUNT],
}

impl Shard {
    fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                op_cache: FxHashMap::default(),
                hits: [0; OP_COUNT],
                misses: [0; OP_COUNT],
                capacity: None,
                generation: 0,
                evicted_keys: FxHashSet::default(),
            }),
            len: AtomicUsize::new(0),
            contended: AtomicU64::new(0),
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            misses: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Lock this shard, counting contention and recovering poisoning.
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        match self.state.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.state.lock().unwrap_or_else(|e| e.into_inner())
            }
        }
    }
}

/// The process-global store: interner + shards + atomic counters.
struct Shared {
    interner: Interner,
    shards: [Shard; SHARD_COUNT],
    /// Mirror of the configured total capacity ([`UNBOUNDED`] = none),
    /// so `op_cache_capacity()`/`stats()` need no lock.
    capacity: AtomicUsize,
    evictions: AtomicU64,
    sweeps: AtomicU64,
    re_misses: AtomicU64,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            interner: Interner::new(),
            shards: std::array::from_fn(|_| Shard::new()),
            capacity: AtomicUsize::new(UNBOUNDED),
            evictions: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            re_misses: AtomicU64::new(0),
        }
    }
}

fn shared() -> &'static Shared {
    static STORE: OnceLock<Shared> = OnceLock::new();
    STORE.get_or_init(Shared::new)
}

/// Route a cache key to its shard: one multiply-mix over the packed key.
#[inline]
fn shard_index(key: &CacheKey) -> usize {
    let (op, l, r) = *key;
    let mut h = (((l as u64) << 32) | r as u64) ^ (op as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h as usize) & (SHARD_COUNT - 1)
}

/// Shard `i`'s slice of a total capacity: exact split, so the per-shard
/// bounds sum to the configured total (small totals leave later shards
/// with a zero share).
fn shard_share(total: usize, i: usize) -> usize {
    total / SHARD_COUNT + usize::from(i < total % SHARD_COUNT)
}

/// Insert `entry` under `key` into an already-locked shard, sweeping that
/// shard if its capacity share is exceeded.
fn insert_bounded(
    global: &Shared,
    shard: &Shard,
    state: &mut ShardState,
    key: CacheKey,
    entry: CacheEntry,
) {
    let stamp = state.generation;
    state.op_cache.insert(key, CacheSlot { entry, stamp });
    if let Some(cap) = state.capacity {
        if state.op_cache.len() > cap {
            // Sweep: drop everything not touched in this shard's current
            // generation. The failpoint injects sweep-time panics/delays
            // while the shard lock is held — the poisoning-recovery story
            // under test.
            fail_point!("store.evict.sweep");
            global.sweeps.fetch_add(1, Ordering::Relaxed);
            let gen = state.generation;
            let before = state.op_cache.len();
            let evicted: Vec<CacheKey> = state
                .op_cache
                .iter()
                .filter(|(_, s)| s.stamp < gen)
                .map(|(k, _)| *k)
                .collect();
            for k in &evicted {
                state.op_cache.remove(k);
                state.evicted_keys.insert(*k);
            }
            state.generation += 1;
            // Hard ceiling: if the whole shard was hot, drop arbitrary
            // surplus.
            if state.op_cache.len() > cap {
                let surplus: Vec<CacheKey> = {
                    let n = state.op_cache.len() - cap;
                    state.op_cache.keys().take(n).copied().collect()
                };
                for k in surplus {
                    state.op_cache.remove(&k);
                    state.evicted_keys.insert(k);
                }
            }
            global
                .evictions
                .fetch_add((before - state.op_cache.len()) as u64, Ordering::Relaxed);
            // Keep the re-miss ledger bounded relative to the shard itself.
            if state.evicted_keys.len() > cap.saturating_mul(8).max(1024 / SHARD_COUNT) {
                state.evicted_keys.clear();
            }
        }
    }
    shard.len.store(state.op_cache.len(), Ordering::Relaxed);
}

/// Copyable policy handle over the process-global language store.
#[derive(Clone, Copy, Debug)]
pub struct Store {
    cached: bool,
}

impl Store {
    /// The default handle: memoized operations.
    pub fn global() -> Store {
        Store { cached: true }
    }

    /// Escape hatch: recompute every operation from the DFAs, bypassing
    /// the op cache (results are still interned, so they compare by id
    /// against cached results). For tests and benchmarks.
    pub fn uncached() -> Store {
        Store { cached: false }
    }

    /// Whether this handle consults the op cache.
    pub fn is_cached(&self) -> bool {
        self.cached
    }

    /// Minimize and intern a DFA, yielding the canonical handle for its
    /// language. This is the single entry point through which every
    /// `Lang` comes into existence. Touches only the interner — no op-
    /// cache shard lock.
    pub fn intern_dfa(dfa: Dfa) -> Lang {
        let (id, dfa) = shared().interner.intern(dfa.minimized());
        Lang::from_store(id, dfa)
    }

    /// Snapshot the store's counters. Counters are monotone between
    /// [`Store::reset_op_cache`] calls. **Lock-free**: reads only atomics
    /// (per-counter consistent, not cross-counter consistent), so metrics
    /// scrapes never stall workers.
    pub fn stats() -> StoreStats {
        let g = shared();
        let per_op = Op::all()
            .iter()
            .map(|&op| OpStats {
                name: op.name(),
                hits: g
                    .shards
                    .iter()
                    .map(|s| s.hits[op.index()].load(Ordering::Relaxed))
                    .sum(),
                misses: g
                    .shards
                    .iter()
                    .map(|s| s.misses[op.index()].load(Ordering::Relaxed))
                    .sum(),
            })
            .collect();
        let shards: Vec<ShardStats> = g
            .shards
            .iter()
            .map(|s| ShardStats {
                size: s.len.load(Ordering::Relaxed) as u64,
                contended: s.contended.load(Ordering::Relaxed),
            })
            .collect();
        let capacity = g.capacity.load(Ordering::Relaxed);
        StoreStats {
            interned: g.interner.len() as u64,
            dedup_hits: g.interner.dedup_hits(),
            op_cache_size: shards.iter().map(|s| s.size).sum(),
            op_cache_capacity: (capacity != UNBOUNDED).then_some(capacity as u64),
            evictions: g.evictions.load(Ordering::Relaxed),
            sweeps: g.sweeps.load(Ordering::Relaxed),
            re_misses: g.re_misses.load(Ordering::Relaxed),
            per_op,
            shards,
        }
    }

    /// Bound the op cache to at most `capacity` entries (`None` restores
    /// the unbounded default). See the [module docs](self) for the
    /// generation-based per-shard sweep policy. A `capacity` of 0 is
    /// clamped to 1. An over-full shard is trimmed down to its share of
    /// the new bound immediately.
    pub fn set_op_cache_capacity(capacity: Option<usize>) {
        let g = shared();
        let clamped = capacity.map(|c| c.max(1));
        g.capacity
            .store(clamped.unwrap_or(UNBOUNDED), Ordering::Relaxed);
        for (i, shard) in g.shards.iter().enumerate() {
            let mut state = shard.lock();
            state.capacity = clamped.map(|total| shard_share(total, i));
            if let Some(cap) = state.capacity {
                // Enforce the new bound now rather than on the next insert.
                if state.op_cache.len() > cap {
                    let surplus: Vec<CacheKey> = {
                        let n = state.op_cache.len() - cap;
                        state.op_cache.keys().take(n).copied().collect()
                    };
                    for k in surplus {
                        state.op_cache.remove(&k);
                        state.evicted_keys.insert(k);
                        g.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            shard.len.store(state.op_cache.len(), Ordering::Relaxed);
        }
    }

    /// The configured op-cache entry bound (`None` = unbounded).
    /// Lock-free.
    pub fn op_cache_capacity() -> Option<usize> {
        let capacity = shared().capacity.load(Ordering::Relaxed);
        (capacity != UNBOUNDED).then_some(capacity)
    }

    /// Clear the memoized operation cache and its hit/miss/eviction
    /// counters (including per-shard contention). The interner is
    /// deliberately untouched: live [`LangId`]s must stay valid. The
    /// configured capacity also survives. Benches use this to compare
    /// cold and warm runs.
    pub fn reset_op_cache() {
        let g = shared();
        for shard in &g.shards {
            let mut state = shard.lock();
            state.op_cache.clear();
            state.hits = [0; OP_COUNT];
            state.misses = [0; OP_COUNT];
            state.generation = 0;
            state.evicted_keys.clear();
            shard.len.store(0, Ordering::Relaxed);
            shard.contended.store(0, Ordering::Relaxed);
            for mirror in shard.hits.iter().chain(shard.misses.iter()) {
                mirror.store(0, Ordering::Relaxed);
            }
        }
        g.evictions.store(0, Ordering::Relaxed);
        g.sweeps.store(0, Ordering::Relaxed);
        g.re_misses.store(0, Ordering::Relaxed);
    }

    // ----- the memoized algebra --------------------------------------------

    pub fn union(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary_commutative(Op::Union, a, b, |x, y| x.union(y))
    }

    pub fn intersect(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary_commutative(Op::Intersect, a, b, |x, y| x.intersect(y))
    }

    pub fn difference(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary(Op::Difference, a, b, |x, y| x.difference(y))
    }

    pub fn concat(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary(Op::Concat, a, b, |x, y| {
            Dfa::from_nfa(&nfa_concat2(Nfa::from_dfa(x), Nfa::from_dfa(y)))
        })
    }

    pub fn complement(&self, a: &Lang) -> Lang {
        self.unary(Op::Complement, a, |x| x.complement())
    }

    pub fn star(&self, a: &Lang) -> Lang {
        self.unary(Op::Star, a, |x| Dfa::from_nfa(&nfa_star(Nfa::from_dfa(x))))
    }

    pub fn reversed(&self, a: &Lang) -> Lang {
        self.unary(Op::Reverse, a, |x| {
            Dfa::from_nfa(&Nfa::from_dfa(x).reversed())
        })
    }

    pub fn right_quotient(&self, a: &Lang, by: &Lang) -> Lang {
        self.binary(Op::RightQuotient, a, by, |x, y| x.right_quotient(y))
    }

    pub fn left_quotient(&self, a: &Lang, by: &Lang) -> Lang {
        self.binary(Op::LeftQuotient, a, by, |x, y| x.left_quotient(y))
    }

    // ----- memoized decision procedures ------------------------------------

    pub fn is_empty(&self, a: &Lang) -> bool {
        self.decide(Op::IsEmpty, a.id(), NO_RHS, || a.dfa().is_empty_lang())
    }

    pub fn is_universal(&self, a: &Lang) -> bool {
        self.decide(Op::IsUniversal, a.id(), NO_RHS, || a.dfa().is_universal())
    }

    pub fn is_subset(&self, a: &Lang, b: &Lang) -> bool {
        self.decide(Op::IsSubset, a.id(), b.id().0, || {
            a.dfa().is_subset_of(b.dfa())
        })
    }

    // ----- plumbing --------------------------------------------------------

    fn binary_commutative(
        &self,
        op: Op,
        a: &Lang,
        b: &Lang,
        compute: impl FnOnce(&Dfa, &Dfa) -> Dfa,
    ) -> Lang {
        // One cache entry serves both argument orders.
        let (lo, hi) = if a.id() <= b.id() {
            (a.id().0, b.id().0)
        } else {
            (b.id().0, a.id().0)
        };
        self.memoized_lang(op, lo, hi, || compute(a.dfa(), b.dfa()))
    }

    fn binary(&self, op: Op, a: &Lang, b: &Lang, compute: impl FnOnce(&Dfa, &Dfa) -> Dfa) -> Lang {
        self.memoized_lang(op, a.id().0, b.id().0, || compute(a.dfa(), b.dfa()))
    }

    fn unary(&self, op: Op, a: &Lang, compute: impl FnOnce(&Dfa) -> Dfa) -> Lang {
        self.memoized_lang(op, a.id().0, NO_RHS, || compute(a.dfa()))
    }

    /// Cache-or-compute for operations producing a language. The compute
    /// closure runs *outside* any shard lock; concurrent threads may
    /// race-compute the same entry, which is benign (both intern to the
    /// same id and the second insert overwrites with an equal value).
    ///
    /// The cold path takes exactly two shard acquisitions: one for the
    /// lookup + miss bookkeeping, one for the insert (the intern in
    /// between synchronizes on the interner, not on any shard).
    fn memoized_lang(&self, op: Op, lhs: u32, rhs: u32, compute: impl FnOnce() -> Dfa) -> Lang {
        let key = (op, lhs, rhs);
        let g = shared();
        if self.cached {
            let shard = &g.shards[shard_index(&key)];
            let mut state = shard.lock();
            let gen = state.generation;
            if let Some(slot) = state.op_cache.get_mut(&key) {
                if let CacheEntry::Lang(id) = slot.entry {
                    slot.stamp = gen; // keep hot entries across sweeps
                    state.hits[op.index()] += 1;
                    shard.hits[op.index()].store(state.hits[op.index()], Ordering::Relaxed);
                    drop(state);
                    let id = LangId(id);
                    return Lang::from_store(id, g.interner.get(id));
                }
            }
            // Miss bookkeeping under the same acquisition as the lookup.
            state.misses[op.index()] += 1;
            shard.misses[op.index()].store(state.misses[op.index()], Ordering::Relaxed);
            if state.evicted_keys.remove(&key) {
                g.re_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        let minimal = compute().minimized();
        let (id, dfa) = g.interner.intern(minimal);
        if self.cached {
            let shard = &g.shards[shard_index(&key)];
            let mut state = shard.lock();
            insert_bounded(g, shard, &mut state, key, CacheEntry::Lang(id.0));
        }
        Lang::from_store(id, dfa)
    }

    /// Cache-or-compute for decision procedures. Same two-acquisition
    /// cold path as [`Store::memoized_lang`].
    fn decide(&self, op: Op, lhs: LangId, rhs: u32, compute: impl FnOnce() -> bool) -> bool {
        let key = (op, lhs.0, rhs);
        let g = shared();
        if self.cached {
            let shard = &g.shards[shard_index(&key)];
            let mut state = shard.lock();
            let gen = state.generation;
            if let Some(slot) = state.op_cache.get_mut(&key) {
                if let CacheEntry::Bool(v) = slot.entry {
                    slot.stamp = gen;
                    state.hits[op.index()] += 1;
                    shard.hits[op.index()].store(state.hits[op.index()], Ordering::Relaxed);
                    return v;
                }
            }
            state.misses[op.index()] += 1;
            shard.misses[op.index()].store(state.misses[op.index()], Ordering::Relaxed);
            if state.evicted_keys.remove(&key) {
                g.re_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        let value = compute();
        if self.cached {
            let shard = &g.shards[shard_index(&key)];
            let mut state = shard.lock();
            insert_bounded(g, shard, &mut state, key, CacheEntry::Bool(value));
        }
        value
    }
}

// ----- statistics -----------------------------------------------------------

/// Per-operation hit/miss counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpStats {
    pub name: &'static str,
    pub hits: u64,
    pub misses: u64,
}

/// Per-shard gauge/counter pair (see [`StoreStats::shards`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Current number of entries in this shard (gauge).
    pub size: u64,
    /// Lock acquisitions on this shard that had to block (monotone
    /// between resets). A hot shard under a cold store points at skewed
    /// key routing; uniformly rising counts point at an overloaded store.
    pub contended: u64,
}

/// A snapshot of the store's counters (see [`Store::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct languages interned since process start (never resets).
    pub interned: u64,
    /// Intern calls answered by an existing canonical DFA (never resets).
    pub dedup_hits: u64,
    /// Current number of memoized operation entries (sum over shards).
    pub op_cache_size: u64,
    /// Configured entry bound (`None` = unbounded).
    pub op_cache_capacity: Option<u64>,
    /// Entries evicted by the generation sweeper since the last reset.
    pub evictions: u64,
    /// Generation sweeps run since the last reset.
    pub sweeps: u64,
    /// Misses on previously-evicted keys since the last reset (a lower
    /// bound — the evicted-key ledger is itself bounded). High re-miss
    /// counts mean the configured capacity is too small for the workload.
    pub re_misses: u64,
    /// Hit/miss counters per operation since the last
    /// [`Store::reset_op_cache`].
    pub per_op: Vec<OpStats>,
    /// Per-shard sizes and contention counts, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl StoreStats {
    /// Total op-cache hits across operations.
    pub fn hits(&self) -> u64 {
        self.per_op.iter().map(|o| o.hits).sum()
    }

    /// Total op-cache misses across operations.
    pub fn misses(&self) -> u64 {
        self.per_op.iter().map(|o| o.misses).sum()
    }

    /// Hits / (hits + misses), or 0 when no operations ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Total blocked shard-lock acquisitions across shards.
    pub fn contended(&self) -> u64 {
        self.shards.iter().map(|s| s.contended).sum()
    }

    /// Counter deltas relative to an `earlier` snapshot (counters are
    /// monotone between resets, so deltas are well-defined; gauges like
    /// `op_cache_size` and per-shard sizes are reported at `self`'s time).
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        let per_op = self
            .per_op
            .iter()
            .map(|o| {
                let before = earlier
                    .per_op
                    .iter()
                    .find(|e| e.name == o.name)
                    .copied()
                    .unwrap_or(OpStats {
                        name: o.name,
                        hits: 0,
                        misses: 0,
                    });
                OpStats {
                    name: o.name,
                    hits: o.hits.saturating_sub(before.hits),
                    misses: o.misses.saturating_sub(before.misses),
                }
            })
            .collect();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                size: s.size,
                contended: s
                    .contended
                    .saturating_sub(earlier.shards.get(i).map_or(0, |e| e.contended)),
            })
            .collect();
        StoreStats {
            interned: self.interned.saturating_sub(earlier.interned),
            dedup_hits: self.dedup_hits.saturating_sub(earlier.dedup_hits),
            op_cache_size: self.op_cache_size,
            op_cache_capacity: self.op_cache_capacity,
            evictions: self.evictions.saturating_sub(earlier.evictions),
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            re_misses: self.re_misses.saturating_sub(earlier.re_misses),
            per_op,
            shards,
        }
    }

    /// One-line summary, e.g. for bench tables.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} hits / {} misses ({:.1}% hit rate), {} langs interned ({} deduped), {} cache entries",
            self.hits(),
            self.misses(),
            self.hit_rate() * 100.0,
            self.interned,
            self.dedup_hits,
            self.op_cache_size
        );
        if let Some(cap) = self.op_cache_capacity {
            s.push_str(&format!(
                " (cap {cap}, {} evicted in {} sweeps, {} re-misses)",
                self.evictions, self.sweeps, self.re_misses
            ));
        }
        s
    }

    /// Multi-line per-operation breakdown (operations that never ran are
    /// omitted), followed by per-shard size/contention columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("store: {}\n", self.summary()));
        for o in &self.per_op {
            if o.hits + o.misses == 0 {
                continue;
            }
            let rate = o.hits as f64 / (o.hits + o.misses) as f64 * 100.0;
            out.push_str(&format!(
                "  {:<16} {:>8} hits {:>8} misses  ({:>5.1}%)\n",
                o.name, o.hits, o.misses, rate
            ));
        }
        if !self.shards.is_empty() {
            let sizes: Vec<String> = self.shards.iter().map(|s| s.size.to_string()).collect();
            let contention: Vec<String> = self
                .shards
                .iter()
                .map(|s| s.contended.to_string())
                .collect();
            out.push_str(&format!(
                "  shard sizes      [{}]\n  shard contention [{}] ({} blocked total)\n",
                sizes.join(" "),
                contention.join(" "),
                self.contended()
            ));
        }
        out
    }
}

// ----- raw NFA compositions used by concat/star ------------------------------

/// NFA concatenation of two NFAs (helper for [`Store::concat`]).
fn nfa_concat2(n1: Nfa, n2: Nfa) -> Nfa {
    let alphabet = n1.alphabet().clone();
    let off = n1.num_states() as u32;
    let mut edges = Vec::new();
    let mut eps = Vec::new();
    let mut accepting = Vec::new();
    for q in 0..n1.num_states() as u32 {
        for (set, t) in n1.transitions(q) {
            edges.push((q, set.clone(), t));
        }
        for t in n1.eps_transitions(q) {
            eps.push((q, t));
        }
        if n1.is_accepting(q) {
            for &s2 in n2.starts() {
                eps.push((q, s2 + off));
            }
        }
    }
    for q in 0..n2.num_states() as u32 {
        for (set, t) in n2.transitions(q) {
            edges.push((q + off, set.clone(), t + off));
        }
        for t in n2.eps_transitions(q) {
            eps.push((q + off, t + off));
        }
        if n2.is_accepting(q) {
            accepting.push(q + off);
        }
    }
    let starts = n1.starts().to_vec();
    Nfa::assemble(
        alphabet,
        off + n2.num_states() as u32,
        edges,
        eps,
        starts,
        accepting,
    )
}

/// NFA Kleene star: fresh accepting hub with ε to starts and from accepts.
fn nfa_star(inner: Nfa) -> Nfa {
    let alphabet = inner.alphabet().clone();
    let hub = inner.num_states() as u32;
    let mut edges = Vec::new();
    let mut eps = Vec::new();
    let mut accepting = vec![hub];
    for q in 0..inner.num_states() as u32 {
        for (set, t) in inner.transitions(q) {
            edges.push((q, set.clone(), t));
        }
        for t in inner.eps_transitions(q) {
            eps.push((q, t));
        }
        if inner.is_accepting(q) {
            accepting.push(q);
            eps.push((q, hub));
        }
    }
    for &s in inner.starts() {
        eps.push((hub, s));
    }
    Nfa::assemble(alphabet, hub + 1, edges, eps, vec![hub], accepting)
}

#[cfg(test)]
mod tests {
    use super::{shard_index, shard_share, Op, SHARD_COUNT};

    #[test]
    fn shard_shares_sum_exactly_to_the_total() {
        for total in [1, 2, 4, 8, 15, 16, 17, 100, 16_384] {
            let sum: usize = (0..SHARD_COUNT).map(|i| shard_share(total, i)).sum();
            assert_eq!(sum, total, "shares must partition total={total}");
        }
    }

    #[test]
    fn shard_routing_spreads_distinct_keys() {
        // Sequential ids (the realistic key distribution) must not all
        // collapse onto a few shards.
        let mut used = [false; SHARD_COUNT];
        for l in 0..64u32 {
            for r in 0..4u32 {
                used[shard_index(&(Op::Union, l, r))] = true;
            }
        }
        let hit = used.iter().filter(|&&u| u).count();
        assert!(
            hit >= SHARD_COUNT / 2,
            "only {hit}/{SHARD_COUNT} shards used"
        );
    }
}
