//! The interned language store: hash-consed DFAs + memoized operations.
//!
//! All [`Lang`] values are handles into one process-global store. The
//! store has two layers:
//!
//! 1. an [`Interner`] of canonical minimal DFAs (never cleared — ids stay
//!    valid for the life of the process), and
//! 2. a **memoized operation cache** keyed by `(op, lhs_id, rhs_id)` for
//!    binary operations (`rhs_id = u32::MAX` for unary ones), mapping to
//!    either a result language id or a decision-procedure boolean.
//!
//! The paper's algorithms (Props. 5.4/5.5, Cor. 5.8, Alg. 6.2) apply the
//! same small algebra to overlapping subexpressions over and over; with
//! the cache, each distinct `(op, operands)` pair pays the automaton
//! construction exactly once per process.
//!
//! [`Store`] itself is a copyable policy handle: [`Store::global`]
//! consults the cache, [`Store::uncached`] recomputes every operation
//! from the DFAs (still interning results, so cached and uncached results
//! remain comparable by id — that is the cross-check tests' lever).
//! Commutative operations (union, intersection) normalize their key so
//! `a ∪ b` and `b ∪ a` share one entry.
//!
//! Hit/miss counters per operation are exposed through [`StoreStats`]
//! snapshots; [`Store::reset_op_cache`] clears the cache and counters
//! (but never the interner) so benches can measure cold vs warm runs.
//!
//! ## Eviction (long-running services)
//!
//! By default the op cache grows without bound — fine for CLI and bench
//! lifetimes. A long-running daemon sets a capacity with
//! [`Store::set_op_cache_capacity`], which switches the cache to a
//! **generation-based** policy: every entry is stamped with the current
//! generation on insert and on each hit; when an insert pushes the cache
//! past its capacity, a *sweep* evicts every entry not touched in the
//! current generation and then advances the generation. Entries in active
//! use are re-stamped on every hit and survive sweeps indefinitely; cold
//! entries survive at most one full generation. If a sweep cannot get
//! below capacity (everything was touched recently), arbitrary surplus
//! entries are dropped so the configured bound is a hard ceiling.
//! Evictions, sweeps, and *re-misses* (a miss on a key that was
//! previously evicted — the cost signal of an undersized cache) are
//! reported in [`StoreStats`]. Eviction never touches the interner, so
//! live [`Lang`] handles are unaffected and re-computed results re-intern
//! to their original ids.
//!
//! ## Lock poisoning
//!
//! The store's mutex guards pure cache state (no invariants span a
//! panic), so every acquisition recovers from poisoning: a worker thread
//! that panics mid-operation must not wedge every subsequent extraction
//! in a daemon that keeps serving.

use crate::dfa::Dfa;
use crate::intern::{Interner, LangId};
use crate::lang::Lang;
use crate::nfa::Nfa;
use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, OnceLock};

/// Operations the store memoizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    Union,
    Intersect,
    Difference,
    Concat,
    Complement,
    Star,
    Reverse,
    RightQuotient,
    LeftQuotient,
    IsEmpty,
    IsUniversal,
    IsSubset,
}

const OP_COUNT: usize = 12;

impl Op {
    fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name for stats rendering.
    pub fn name(self) -> &'static str {
        match self {
            Op::Union => "union",
            Op::Intersect => "intersect",
            Op::Difference => "difference",
            Op::Concat => "concat",
            Op::Complement => "complement",
            Op::Star => "star",
            Op::Reverse => "reverse",
            Op::RightQuotient => "right_quotient",
            Op::LeftQuotient => "left_quotient",
            Op::IsEmpty => "is_empty",
            Op::IsUniversal => "is_universal",
            Op::IsSubset => "is_subset",
        }
    }

    fn all() -> [Op; OP_COUNT] {
        [
            Op::Union,
            Op::Intersect,
            Op::Difference,
            Op::Concat,
            Op::Complement,
            Op::Star,
            Op::Reverse,
            Op::RightQuotient,
            Op::LeftQuotient,
            Op::IsEmpty,
            Op::IsUniversal,
            Op::IsSubset,
        ]
    }
}

/// Sentinel rhs for unary operations.
const NO_RHS: u32 = u32::MAX;

#[derive(Clone, Copy)]
enum CacheEntry {
    Lang(u32),
    Bool(bool),
}

type CacheKey = (Op, u32, u32);

/// A cached result stamped with the generation of its last use.
#[derive(Clone, Copy)]
struct CacheSlot {
    entry: CacheEntry,
    stamp: u64,
}

struct StoreInner {
    interner: Interner,
    op_cache: HashMap<CacheKey, CacheSlot>,
    hits: [u64; OP_COUNT],
    misses: [u64; OP_COUNT],
    /// `None` = unbounded (the CLI/bench default).
    capacity: Option<usize>,
    /// Current generation; advanced by every sweep.
    generation: u64,
    evictions: u64,
    sweeps: u64,
    re_misses: u64,
    /// Keys evicted since the last reset, for re-miss attribution. Bounded:
    /// drained wholesale when it outgrows the cache capacity several times
    /// over, so re-miss counts are a (documented) lower bound, never a leak.
    evicted_keys: HashSet<CacheKey>,
}

impl StoreInner {
    fn new() -> StoreInner {
        StoreInner {
            interner: Interner::new(),
            op_cache: HashMap::new(),
            hits: [0; OP_COUNT],
            misses: [0; OP_COUNT],
            capacity: None,
            generation: 0,
            evictions: 0,
            sweeps: 0,
            re_misses: 0,
            evicted_keys: HashSet::new(),
        }
    }

    /// Record a cache miss on `key`, attributing re-misses.
    fn note_miss(&mut self, op: Op, key: &CacheKey) {
        self.misses[op.index()] += 1;
        if self.evicted_keys.remove(key) {
            self.re_misses += 1;
        }
    }

    /// Insert `slot` under `key`, sweeping if the bound is exceeded.
    fn insert_bounded(&mut self, key: CacheKey, entry: CacheEntry) {
        let stamp = self.generation;
        self.op_cache.insert(key, CacheSlot { entry, stamp });
        let Some(cap) = self.capacity else { return };
        if self.op_cache.len() <= cap {
            return;
        }
        // Sweep: drop everything not touched in the current generation.
        self.sweeps += 1;
        let gen = self.generation;
        let before = self.op_cache.len();
        let evicted: Vec<CacheKey> = self
            .op_cache
            .iter()
            .filter(|(_, s)| s.stamp < gen)
            .map(|(k, _)| *k)
            .collect();
        for k in &evicted {
            self.op_cache.remove(k);
            self.evicted_keys.insert(*k);
        }
        self.generation += 1;
        // Hard ceiling: if the whole cache was hot, drop arbitrary surplus.
        if self.op_cache.len() > cap {
            let surplus: Vec<CacheKey> = {
                let n = self.op_cache.len() - cap;
                self.op_cache.keys().take(n).copied().collect()
            };
            for k in surplus {
                self.op_cache.remove(&k);
                self.evicted_keys.insert(k);
            }
        }
        self.evictions += (before - self.op_cache.len()) as u64;
        // Keep the re-miss ledger bounded relative to the cache itself.
        if self.evicted_keys.len() > cap.saturating_mul(8).max(1024) {
            self.evicted_keys.clear();
        }
    }
}

fn inner() -> &'static Mutex<StoreInner> {
    static STORE: OnceLock<Mutex<StoreInner>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(StoreInner::new()))
}

fn lock() -> std::sync::MutexGuard<'static, StoreInner> {
    // A panic mid-lock can only poison pure cache state; recover it.
    inner().lock().unwrap_or_else(|e| e.into_inner())
}

/// Copyable policy handle over the process-global language store.
#[derive(Clone, Copy, Debug)]
pub struct Store {
    cached: bool,
}

impl Store {
    /// The default handle: memoized operations.
    pub fn global() -> Store {
        Store { cached: true }
    }

    /// Escape hatch: recompute every operation from the DFAs, bypassing
    /// the op cache (results are still interned, so they compare by id
    /// against cached results). For tests and benchmarks.
    pub fn uncached() -> Store {
        Store { cached: false }
    }

    /// Whether this handle consults the op cache.
    pub fn is_cached(&self) -> bool {
        self.cached
    }

    /// Minimize and intern a DFA, yielding the canonical handle for its
    /// language. This is the single entry point through which every
    /// `Lang` comes into existence.
    pub fn intern_dfa(dfa: Dfa) -> Lang {
        let minimal = dfa.minimized();
        let (id, shared) = lock().interner.intern(minimal);
        Lang::from_store(id, shared)
    }

    /// Snapshot the store's counters. Counters are monotone between
    /// [`Store::reset_op_cache`] calls.
    pub fn stats() -> StoreStats {
        let guard = lock();
        let per_op = Op::all()
            .iter()
            .map(|&op| OpStats {
                name: op.name(),
                hits: guard.hits[op.index()],
                misses: guard.misses[op.index()],
            })
            .collect();
        StoreStats {
            interned: guard.interner.len() as u64,
            dedup_hits: guard.interner.dedup_hits(),
            op_cache_size: guard.op_cache.len() as u64,
            op_cache_capacity: guard.capacity.map(|c| c as u64),
            evictions: guard.evictions,
            sweeps: guard.sweeps,
            re_misses: guard.re_misses,
            per_op,
        }
    }

    /// Bound the op cache to at most `capacity` entries (`None` restores
    /// the unbounded default). See the [module docs](self) for the
    /// generation-based sweep policy. A `capacity` of 0 is clamped to 1.
    /// An over-full cache is swept down to the new bound immediately.
    pub fn set_op_cache_capacity(capacity: Option<usize>) {
        let mut guard = lock();
        guard.capacity = capacity.map(|c| c.max(1));
        if let Some(cap) = guard.capacity {
            // Enforce the new bound now rather than on the next insert.
            if guard.op_cache.len() > cap {
                let surplus: Vec<CacheKey> = {
                    let n = guard.op_cache.len() - cap;
                    guard.op_cache.keys().take(n).copied().collect()
                };
                for k in surplus {
                    guard.op_cache.remove(&k);
                    guard.evicted_keys.insert(k);
                    guard.evictions += 1;
                }
            }
        }
    }

    /// The configured op-cache entry bound (`None` = unbounded).
    pub fn op_cache_capacity() -> Option<usize> {
        lock().capacity
    }

    /// Clear the memoized operation cache and its hit/miss/eviction
    /// counters. The interner is deliberately untouched: live [`LangId`]s
    /// must stay valid. The configured capacity also survives. Benches use
    /// this to compare cold and warm runs.
    pub fn reset_op_cache() {
        let mut guard = lock();
        guard.op_cache.clear();
        guard.hits = [0; OP_COUNT];
        guard.misses = [0; OP_COUNT];
        guard.generation = 0;
        guard.evictions = 0;
        guard.sweeps = 0;
        guard.re_misses = 0;
        guard.evicted_keys.clear();
    }

    // ----- the memoized algebra --------------------------------------------

    pub fn union(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary_commutative(Op::Union, a, b, |x, y| x.union(y))
    }

    pub fn intersect(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary_commutative(Op::Intersect, a, b, |x, y| x.intersect(y))
    }

    pub fn difference(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary(Op::Difference, a, b, |x, y| x.difference(y))
    }

    pub fn concat(&self, a: &Lang, b: &Lang) -> Lang {
        self.binary(Op::Concat, a, b, |x, y| {
            Dfa::from_nfa(&nfa_concat2(Nfa::from_dfa(x), Nfa::from_dfa(y)))
        })
    }

    pub fn complement(&self, a: &Lang) -> Lang {
        self.unary(Op::Complement, a, |x| x.complement())
    }

    pub fn star(&self, a: &Lang) -> Lang {
        self.unary(Op::Star, a, |x| Dfa::from_nfa(&nfa_star(Nfa::from_dfa(x))))
    }

    pub fn reversed(&self, a: &Lang) -> Lang {
        self.unary(Op::Reverse, a, |x| {
            Dfa::from_nfa(&Nfa::from_dfa(x).reversed())
        })
    }

    pub fn right_quotient(&self, a: &Lang, by: &Lang) -> Lang {
        self.binary(Op::RightQuotient, a, by, |x, y| x.right_quotient(y))
    }

    pub fn left_quotient(&self, a: &Lang, by: &Lang) -> Lang {
        self.binary(Op::LeftQuotient, a, by, |x, y| x.left_quotient(y))
    }

    // ----- memoized decision procedures ------------------------------------

    pub fn is_empty(&self, a: &Lang) -> bool {
        self.decide(Op::IsEmpty, a.id(), NO_RHS, || a.dfa().is_empty_lang())
    }

    pub fn is_universal(&self, a: &Lang) -> bool {
        self.decide(Op::IsUniversal, a.id(), NO_RHS, || a.dfa().is_universal())
    }

    pub fn is_subset(&self, a: &Lang, b: &Lang) -> bool {
        self.decide(Op::IsSubset, a.id(), b.id().0, || {
            a.dfa().is_subset_of(b.dfa())
        })
    }

    // ----- plumbing --------------------------------------------------------

    fn binary_commutative(
        &self,
        op: Op,
        a: &Lang,
        b: &Lang,
        compute: impl FnOnce(&Dfa, &Dfa) -> Dfa,
    ) -> Lang {
        // One cache entry serves both argument orders.
        let (lo, hi) = if a.id() <= b.id() {
            (a.id().0, b.id().0)
        } else {
            (b.id().0, a.id().0)
        };
        self.memoized_lang(op, lo, hi, || compute(a.dfa(), b.dfa()))
    }

    fn binary(&self, op: Op, a: &Lang, b: &Lang, compute: impl FnOnce(&Dfa, &Dfa) -> Dfa) -> Lang {
        self.memoized_lang(op, a.id().0, b.id().0, || compute(a.dfa(), b.dfa()))
    }

    fn unary(&self, op: Op, a: &Lang, compute: impl FnOnce(&Dfa) -> Dfa) -> Lang {
        self.memoized_lang(op, a.id().0, NO_RHS, || compute(a.dfa()))
    }

    /// Cache-or-compute for operations producing a language. The compute
    /// closure runs *outside* the store lock; concurrent threads may
    /// race-compute the same entry, which is benign (both intern to the
    /// same id and the second insert overwrites with an equal value).
    fn memoized_lang(&self, op: Op, lhs: u32, rhs: u32, compute: impl FnOnce() -> Dfa) -> Lang {
        let key = (op, lhs, rhs);
        if self.cached {
            let mut guard = lock();
            let gen = guard.generation;
            if let Some(slot) = guard.op_cache.get_mut(&key) {
                if let CacheEntry::Lang(id) = slot.entry {
                    slot.stamp = gen; // keep hot entries across sweeps
                    guard.hits[op.index()] += 1;
                    let id = LangId(id);
                    let shared = guard.interner.get(id);
                    return Lang::from_store(id, shared);
                }
            }
            guard.note_miss(op, &key);
        }
        let minimal = compute().minimized();
        let mut guard = lock();
        let (id, shared) = guard.interner.intern(minimal);
        if self.cached {
            guard.insert_bounded(key, CacheEntry::Lang(id.0));
        }
        drop(guard);
        Lang::from_store(id, shared)
    }

    /// Cache-or-compute for decision procedures.
    fn decide(&self, op: Op, lhs: LangId, rhs: u32, compute: impl FnOnce() -> bool) -> bool {
        let key = (op, lhs.0, rhs);
        if self.cached {
            let mut guard = lock();
            let gen = guard.generation;
            if let Some(slot) = guard.op_cache.get_mut(&key) {
                if let CacheEntry::Bool(v) = slot.entry {
                    slot.stamp = gen;
                    guard.hits[op.index()] += 1;
                    return v;
                }
            }
            guard.note_miss(op, &key);
        }
        let value = compute();
        if self.cached {
            lock().insert_bounded(key, CacheEntry::Bool(value));
        }
        value
    }
}

// ----- statistics -----------------------------------------------------------

/// Per-operation hit/miss counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpStats {
    pub name: &'static str,
    pub hits: u64,
    pub misses: u64,
}

/// A snapshot of the store's counters (see [`Store::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct languages interned since process start (never resets).
    pub interned: u64,
    /// Intern calls answered by an existing canonical DFA (never resets).
    pub dedup_hits: u64,
    /// Current number of memoized operation entries.
    pub op_cache_size: u64,
    /// Configured entry bound (`None` = unbounded).
    pub op_cache_capacity: Option<u64>,
    /// Entries evicted by the generation sweeper since the last reset.
    pub evictions: u64,
    /// Generation sweeps run since the last reset.
    pub sweeps: u64,
    /// Misses on previously-evicted keys since the last reset (a lower
    /// bound — the evicted-key ledger is itself bounded). High re-miss
    /// counts mean the configured capacity is too small for the workload.
    pub re_misses: u64,
    /// Hit/miss counters per operation since the last
    /// [`Store::reset_op_cache`].
    pub per_op: Vec<OpStats>,
}

impl StoreStats {
    /// Total op-cache hits across operations.
    pub fn hits(&self) -> u64 {
        self.per_op.iter().map(|o| o.hits).sum()
    }

    /// Total op-cache misses across operations.
    pub fn misses(&self) -> u64 {
        self.per_op.iter().map(|o| o.misses).sum()
    }

    /// Hits / (hits + misses), or 0 when no operations ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Counter deltas relative to an `earlier` snapshot (counters are
    /// monotone between resets, so deltas are well-defined; gauges like
    /// `op_cache_size` are reported at `self`'s time).
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        let per_op = self
            .per_op
            .iter()
            .map(|o| {
                let before = earlier
                    .per_op
                    .iter()
                    .find(|e| e.name == o.name)
                    .copied()
                    .unwrap_or(OpStats {
                        name: o.name,
                        hits: 0,
                        misses: 0,
                    });
                OpStats {
                    name: o.name,
                    hits: o.hits.saturating_sub(before.hits),
                    misses: o.misses.saturating_sub(before.misses),
                }
            })
            .collect();
        StoreStats {
            interned: self.interned.saturating_sub(earlier.interned),
            dedup_hits: self.dedup_hits.saturating_sub(earlier.dedup_hits),
            op_cache_size: self.op_cache_size,
            op_cache_capacity: self.op_cache_capacity,
            evictions: self.evictions.saturating_sub(earlier.evictions),
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            re_misses: self.re_misses.saturating_sub(earlier.re_misses),
            per_op,
        }
    }

    /// One-line summary, e.g. for bench tables.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} hits / {} misses ({:.1}% hit rate), {} langs interned ({} deduped), {} cache entries",
            self.hits(),
            self.misses(),
            self.hit_rate() * 100.0,
            self.interned,
            self.dedup_hits,
            self.op_cache_size
        );
        if let Some(cap) = self.op_cache_capacity {
            s.push_str(&format!(
                " (cap {cap}, {} evicted in {} sweeps, {} re-misses)",
                self.evictions, self.sweeps, self.re_misses
            ));
        }
        s
    }

    /// Multi-line per-operation breakdown (operations that never ran are
    /// omitted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("store: {}\n", self.summary()));
        for o in &self.per_op {
            if o.hits + o.misses == 0 {
                continue;
            }
            let rate = o.hits as f64 / (o.hits + o.misses) as f64 * 100.0;
            out.push_str(&format!(
                "  {:<16} {:>8} hits {:>8} misses  ({:>5.1}%)\n",
                o.name, o.hits, o.misses, rate
            ));
        }
        out
    }
}

// ----- raw NFA compositions used by concat/star ------------------------------

/// NFA concatenation of two NFAs (helper for [`Store::concat`]).
fn nfa_concat2(n1: Nfa, n2: Nfa) -> Nfa {
    let alphabet = n1.alphabet().clone();
    let off = n1.num_states() as u32;
    let mut edges = Vec::new();
    let mut eps = Vec::new();
    let mut accepting = Vec::new();
    for q in 0..n1.num_states() as u32 {
        for (set, t) in n1.transitions(q) {
            edges.push((q, set.clone(), t));
        }
        for t in n1.eps_transitions(q) {
            eps.push((q, t));
        }
        if n1.is_accepting(q) {
            for &s2 in n2.starts() {
                eps.push((q, s2 + off));
            }
        }
    }
    for q in 0..n2.num_states() as u32 {
        for (set, t) in n2.transitions(q) {
            edges.push((q + off, set.clone(), t + off));
        }
        for t in n2.eps_transitions(q) {
            eps.push((q + off, t + off));
        }
        if n2.is_accepting(q) {
            accepting.push(q + off);
        }
    }
    let starts = n1.starts().to_vec();
    Nfa::assemble(
        alphabet,
        off + n2.num_states() as u32,
        edges,
        eps,
        starts,
        accepting,
    )
}

/// NFA Kleene star: fresh accepting hub with ε to starts and from accepts.
fn nfa_star(inner: Nfa) -> Nfa {
    let alphabet = inner.alphabet().clone();
    let hub = inner.num_states() as u32;
    let mut edges = Vec::new();
    let mut eps = Vec::new();
    let mut accepting = vec![hub];
    for q in 0..inner.num_states() as u32 {
        for (set, t) in inner.transitions(q) {
            edges.push((q, set.clone(), t));
        }
        for t in inner.eps_transitions(q) {
            eps.push((q, t));
        }
        if inner.is_accepting(q) {
            accepting.push(q);
            eps.push((q, hub));
        }
    }
    for &s in inner.starts() {
        eps.push((hub, s));
    }
    Nfa::assemble(alphabet, hub + 1, edges, eps, vec![hub], accepting)
}
