//! Nondeterministic finite automata with ε-transitions.
//!
//! NFAs are the intermediate representation between regexes and DFAs:
//! the Thompson fragment of [`Regex`] compiles here structurally
//! ([`Nfa::thompson`]), DFAs convert trivially ([`Nfa::from_dfa`]), and
//! reversal ([`Nfa::reversed`]) plus multi-start construction support the
//! quotient operations of [`crate::dfa::quotient`].
//!
//! Transitions are labeled by [`SymbolSet`]s so a `[^p]` class is one edge,
//! not `|Σ|−1` edges.

use crate::alphabet::{Alphabet, SymbolSet};
use crate::regex::Regex;
use crate::symbol::Symbol;

/// NFA state id (dense index).
pub type StateId = u32;

#[derive(Debug, Clone, Default)]
struct State {
    /// Labeled transitions: taking any symbol in the set moves to target.
    trans: Vec<(SymbolSet, StateId)>,
    /// ε-transitions.
    eps: Vec<StateId>,
    accepting: bool,
}

/// A nondeterministic finite automaton with ε-moves and a *set* of start
/// states (multi-start is needed for left quotients).
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Alphabet,
    states: Vec<State>,
    starts: Vec<StateId>,
}

impl Nfa {
    /// An NFA with no states: the empty language.
    pub fn empty(alphabet: Alphabet) -> Self {
        Nfa {
            alphabet,
            states: Vec::new(),
            starts: Vec::new(),
        }
    }

    /// The alphabet this automaton ranges over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The start-state set.
    pub fn starts(&self) -> &[StateId] {
        &self.starts
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.states[s as usize].accepting
    }

    /// Iterate the labeled transitions of `s`.
    pub fn transitions(&self, s: StateId) -> impl Iterator<Item = (&SymbolSet, StateId)> + '_ {
        self.states[s as usize]
            .trans
            .iter()
            .map(|(set, t)| (set, *t))
    }

    /// Iterate the ε-transitions of `s`.
    pub fn eps_transitions(&self, s: StateId) -> impl Iterator<Item = StateId> + '_ {
        self.states[s as usize].eps.iter().copied()
    }

    fn add_state(&mut self) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(State::default());
        id
    }

    fn add_edge(&mut self, from: StateId, label: SymbolSet, to: StateId) {
        if !label.is_empty() {
            self.states[from as usize].trans.push((label, to));
        }
    }

    fn add_eps(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].eps.push(to);
    }

    /// Assemble an NFA from flat part lists (used by the NFA composition
    /// layer in [`crate::dfa`]). Duplicate accepting ids are tolerated.
    pub fn assemble(
        alphabet: Alphabet,
        num_states: u32,
        edges: Vec<(StateId, SymbolSet, StateId)>,
        eps: Vec<(StateId, StateId)>,
        starts: Vec<StateId>,
        accepting: Vec<StateId>,
    ) -> Nfa {
        let mut nfa = Nfa::empty(alphabet);
        for _ in 0..num_states {
            nfa.add_state();
        }
        for (from, set, to) in edges {
            nfa.add_edge(from, set, to);
        }
        for (from, to) in eps {
            nfa.add_eps(from, to);
        }
        for a in accepting {
            nfa.states[a as usize].accepting = true;
        }
        nfa.starts = starts;
        nfa
    }

    /// Thompson construction for the classical fragment of [`Regex`].
    ///
    /// # Panics
    ///
    /// Panics if the regex contains an extended operator (`And`, `Not`,
    /// `Diff`); compile those through [`crate::dfa::Dfa::from_regex`], which
    /// lowers them via automata products.
    pub fn thompson(alphabet: &Alphabet, regex: &Regex) -> Nfa {
        let mut nfa = Nfa::empty(alphabet.clone());
        let accept = nfa.add_state();
        nfa.states[accept as usize].accepting = true;
        let start = nfa.build_fragment(regex, accept);
        nfa.starts = vec![start];
        nfa
    }

    /// Build a fragment whose final state is `to`; returns its entry state.
    fn build_fragment(&mut self, regex: &Regex, to: StateId) -> StateId {
        match regex {
            Regex::Empty => self.add_state(), // fresh state with no way to `to`
            Regex::Epsilon => {
                let s = self.add_state();
                self.add_eps(s, to);
                s
            }
            Regex::Class(set) => {
                let s = self.add_state();
                self.add_edge(s, set.clone(), to);
                s
            }
            Regex::Concat(parts) => {
                let mut next = to;
                for part in parts.iter().rev() {
                    next = self.build_fragment(part, next);
                }
                next
            }
            Regex::Alt(parts) => {
                let s = self.add_state();
                for part in parts {
                    let entry = self.build_fragment(part, to);
                    self.add_eps(s, entry);
                }
                s
            }
            Regex::Star(inner) => {
                let s = self.add_state();
                let entry = self.build_fragment(inner, s);
                self.add_eps(s, entry);
                self.add_eps(s, to);
                s
            }
            Regex::Plus(inner) => {
                // inner · inner*
                let loop_hub = self.add_state();
                let entry_rep = self.build_fragment(inner, loop_hub);
                self.add_eps(loop_hub, entry_rep);
                self.add_eps(loop_hub, to);

                self.build_fragment(inner, loop_hub)
            }
            Regex::Opt(inner) => {
                let s = self.add_state();
                let entry = self.build_fragment(inner, to);
                self.add_eps(s, entry);
                self.add_eps(s, to);
                s
            }
            Regex::And(_) | Regex::Not(_) | Regex::Diff(_, _) => {
                panic!("Nfa::thompson cannot compile extended operators; use Dfa::from_regex")
            }
        }
    }

    /// View a DFA as an NFA (needed when an extended-operator subresult is
    /// spliced back into Thompson compilation, and for reversal).
    pub fn from_dfa(dfa: &crate::dfa::Dfa) -> Nfa {
        let alphabet = dfa.alphabet().clone();
        let mut nfa = Nfa::empty(alphabet.clone());
        for _ in 0..dfa.num_states() {
            nfa.add_state();
        }
        for q in 0..dfa.num_states() as StateId {
            nfa.states[q as usize].accepting = dfa.is_accepting(q);
            // Group symbols by target to keep edges compact.
            let mut by_target: std::collections::HashMap<StateId, SymbolSet> =
                std::collections::HashMap::new();
            for sym in alphabet.symbols() {
                let t = dfa.next(q, sym);
                by_target
                    .entry(t)
                    .or_insert_with(|| alphabet.empty_set())
                    .insert(sym);
            }
            let mut edges: Vec<(StateId, SymbolSet)> = by_target.into_iter().collect();
            edges.sort_by_key(|(t, _)| *t);
            for (t, set) in edges {
                nfa.add_edge(q, set, t);
            }
        }
        nfa.starts = vec![dfa.start()];
        nfa
    }

    /// The reversal: accepts `wᴿ` iff `self` accepts `w`. Starts become
    /// accepting states and vice versa; every edge flips direction.
    pub fn reversed(&self) -> Nfa {
        let mut rev = Nfa::empty(self.alphabet.clone());
        for _ in 0..self.states.len() {
            rev.add_state();
        }
        for (i, st) in self.states.iter().enumerate() {
            for (set, t) in &st.trans {
                rev.add_edge(*t, set.clone(), i as StateId);
            }
            for &t in &st.eps {
                rev.add_eps(t, i as StateId);
            }
            if st.accepting {
                rev.starts.push(i as StateId);
            }
        }
        for &s in &self.starts {
            rev.states[s as usize].accepting = true;
        }
        rev
    }

    /// Replace the start-state set (used by quotient constructions).
    pub fn with_starts(mut self, starts: Vec<StateId>) -> Nfa {
        assert!(
            starts.iter().all(|&s| (s as usize) < self.states.len()),
            "start state out of range"
        );
        self.starts = starts;
        self
    }

    /// ε-closure of a state set, returned as a sorted, deduplicated vec.
    pub fn eps_closure(&self, set: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(set.len());
        for &s in set {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = stack.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Direct NFA membership test by subset simulation. Mostly for tests —
    /// production matching goes through a compiled [`Dfa`](crate::dfa::Dfa).
    pub fn accepts(&self, input: &[Symbol]) -> bool {
        let mut cur = self.eps_closure(&self.starts);
        for &sym in input {
            let mut next: Vec<StateId> = Vec::new();
            for &s in &cur {
                for (set, t) in &self.states[s as usize].trans {
                    if set.contains(sym) && !next.contains(t) {
                        next.push(*t);
                    }
                }
            }
            cur = self.eps_closure(&next);
            if cur.is_empty() {
                return false;
            }
        }
        cur.iter().any(|&s| self.states[s as usize].accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn nfa(s: &str) -> Nfa {
        let a = ab();
        Nfa::thompson(&a, &Regex::parse(&a, s).unwrap())
    }

    fn accepts(n: &Nfa, s: &str) -> bool {
        n.accepts(&n.alphabet().str_to_syms(s).unwrap())
    }

    #[test]
    fn literal_and_epsilon() {
        let n = nfa("p q");
        assert!(accepts(&n, "p q"));
        assert!(!accepts(&n, "p"));
        assert!(!accepts(&n, "p q p"));
        let e = nfa("~");
        assert!(accepts(&e, ""));
        assert!(!accepts(&e, "p"));
        let empty = nfa("[]");
        assert!(!accepts(&empty, ""));
        assert!(!accepts(&empty, "p"));
    }

    #[test]
    fn star_plus_opt() {
        let n = nfa("p*");
        assert!(accepts(&n, ""));
        assert!(accepts(&n, "p p p"));
        assert!(!accepts(&n, "q"));
        let n = nfa("p+");
        assert!(!accepts(&n, ""));
        assert!(accepts(&n, "p"));
        assert!(accepts(&n, "p p"));
        let n = nfa("p?");
        assert!(accepts(&n, ""));
        assert!(accepts(&n, "p"));
        assert!(!accepts(&n, "p p"));
    }

    #[test]
    fn alternation_and_classes() {
        let n = nfa("(p q)* p");
        assert!(accepts(&n, "p"));
        assert!(accepts(&n, "p q p"));
        assert!(accepts(&n, "p q p q p"));
        assert!(!accepts(&n, "p q"));
        let n = nfa("[^p]* p .*");
        assert!(accepts(&n, "q q p q p"));
        assert!(!accepts(&n, "q q"));
    }

    #[test]
    fn plus_requires_two_copies_semantics() {
        // (p q)+ must not accept ε or interleave wrongly.
        let n = nfa("(p q)+");
        assert!(!accepts(&n, ""));
        assert!(accepts(&n, "p q"));
        assert!(accepts(&n, "p q p q"));
        assert!(!accepts(&n, "p q p"));
    }

    #[test]
    fn reversal_reverses_language() {
        let n = nfa("p q q");
        let r = n.reversed();
        assert!(accepts(&r, "q q p"));
        assert!(!accepts(&r, "p q q"));
        // reversal is an involution on the language
        let rr = r.reversed();
        assert!(accepts(&rr, "p q q"));
        assert!(!accepts(&rr, "q q p"));
    }

    #[test]
    fn eps_closure_is_transitive() {
        // p? q? has chained epsilon moves from the start.
        let n = nfa("p? q?");
        let closure = n.eps_closure(n.starts());
        // must include an accepting state because ε is in the language
        assert!(closure.iter().any(|&s| n.is_accepting(s)));
    }

    #[test]
    #[should_panic(expected = "extended operators")]
    fn thompson_rejects_extended_ops() {
        let a = ab();
        let r = Regex::parse(&a, "!p").unwrap();
        Nfa::thompson(&a, &r);
    }
}
