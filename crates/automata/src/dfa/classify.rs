//! Vectorized symbol classification for the extraction scan loop.
//!
//! The dense engine spends a per-token table lookup turning a [`Symbol`]
//! into its equivalence class before stepping any automaton. Real wrapper
//! partitions are tiny (≤6 classes over ≤64 tag symbols), which is exactly
//! the shape a `pshufb`-style in-register shuffle handles: 16 symbols
//! classify in a handful of instructions instead of 16 dependent loads.
//!
//! [`DenseClassifier`] wraps a [`SymbolClasses`] partition behind one
//! chunk-oriented entry point, [`DenseClassifier::classify_chunk`], which
//! fills a `u16` class buffer and returns the chunk's marker-class bitmask
//! (the fused scan's candidate test becomes a word-AND instead of a
//! per-token branch). Two kernels implement it:
//!
//! * **scalar** — a plain map lookup per token. Always compiled, used on
//!   every platform and for every alphabet; this is the cross-check
//!   oracle the SIMD kernel is property-tested against.
//! * **ssse3** (x86-64, `simd` cargo feature, runtime-detected) — symbols
//!   are packed `u32→u8` with SSE2 saturating packs, then classified by
//!   up to four 16-entry `pshufb` table shuffles (one per 16-symbol band,
//!   out-of-band lanes forced to zero via the shuffle's sign-bit rule and
//!   OR-merged). Eligible when the alphabet has ≤64 symbols — the wrapper
//!   regime — and falls back to scalar otherwise.
//!
//! The kernel choice is made once at construction; `classify_chunk` is
//! branch-stable in the scan loop.

use crate::dfa::dense::SymbolClasses;
use crate::symbol::Symbol;

/// Largest alphabet the shuffle kernel handles: 4 bands × 16 `pshufb`
/// entries. Wrapper alphabets (tag names seen in training) sit well under
/// this; bigger alphabets classify through the scalar kernel.
pub const SIMD_MAX_SYMBOLS: usize = 64;

/// A compiled symbol→class map with a chunked, optionally vectorized
/// classification entry point. Built once per extractor; `Clone` is cheap
/// relative to compile and only used there.
#[derive(Debug, Clone)]
pub struct DenseClassifier {
    /// `map[sym.index()]` = class of `sym` (u16: checked at construction).
    map: Vec<u16>,
    /// The selected kernel (fixed at construction).
    kernel: Kernel,
}

#[derive(Debug, Clone)]
enum Kernel {
    Scalar,
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Ssse3 {
        /// Four 16-entry `pshufb` tables: `tables[b][i]` is the class of
        /// symbol `16·b + i` (zero-padded past the alphabet).
        tables: [[u8; 16]; 4],
    },
}

impl DenseClassifier {
    /// Build the best available kernel for `classes`: the SSSE3 shuffle
    /// kernel when the `simd` feature is on, the CPU supports it, and the
    /// alphabet fits the shuffle tables; the scalar kernel otherwise.
    pub fn new(classes: &SymbolClasses) -> DenseClassifier {
        let c = DenseClassifier::scalar(classes);
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        let c = {
            let mut c = c;
            let fits = classes.num_symbols() <= SIMD_MAX_SYMBOLS;
            if fits && std::arch::is_x86_feature_detected!("ssse3") {
                // num_classes ≤ num_symbols ≤ 64, so every class id fits
                // the u8 shuffle entries.
                let mut tables = [[0u8; 16]; 4];
                for (i, &cls) in c.map.iter().enumerate() {
                    tables[i / 16][i % 16] = cls as u8;
                }
                c.kernel = Kernel::Ssse3 { tables };
            }
            c
        };
        c
    }

    /// Build the scalar kernel unconditionally — the cross-check oracle
    /// for the vectorized path (and the only kernel off x86-64 or without
    /// the `simd` feature).
    pub fn scalar(classes: &SymbolClasses) -> DenseClassifier {
        assert!(
            classes.num_classes() <= usize::from(u16::MAX) + 1,
            "class partition exceeds the u16 encoding"
        );
        let map = (0..classes.num_symbols())
            .map(|i| classes.class_of(Symbol::from_index(i)) as u16)
            .collect();
        DenseClassifier {
            map,
            kernel: Kernel::Scalar,
        }
    }

    /// Which kernel classification runs on (observability: `--stats`,
    /// `/metrics`, bench tables).
    pub fn kind(&self) -> &'static str {
        match self.kernel {
            Kernel::Scalar => "scalar",
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Kernel::Ssse3 { .. } => "simd-ssse3",
        }
    }

    /// Whether the vectorized kernel was selected.
    pub fn is_vectorized(&self) -> bool {
        !matches!(self.kernel, Kernel::Scalar)
    }

    /// Classify up to 64 tokens: `out[k]` receives the class of `doc[k]`,
    /// and bit `k` of the returned word is set iff that class equals
    /// `marker`. `doc` and `out` must have equal lengths ≤ 64.
    #[inline]
    pub fn classify_chunk(&self, doc: &[Symbol], out: &mut [u16], marker: u16) -> u64 {
        debug_assert_eq!(doc.len(), out.len());
        debug_assert!(doc.len() <= 64);
        match &self.kernel {
            Kernel::Scalar => self.classify_chunk_scalar(doc, out, marker),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Kernel::Ssse3 { tables } => {
                // SAFETY: the Ssse3 kernel is only constructed after
                // `is_x86_feature_detected!("ssse3")` succeeded.
                unsafe { classify_chunk_ssse3(tables, &self.map, doc, out, marker) }
            }
        }
    }

    #[inline]
    fn classify_chunk_scalar(&self, doc: &[Symbol], out: &mut [u16], marker: u16) -> u64 {
        let mut mask = 0u64;
        for (k, (&sym, slot)) in doc.iter().zip(out.iter_mut()).enumerate() {
            let class = self.map[sym.index()];
            *slot = class;
            mask |= u64::from(class == marker) << k;
        }
        mask
    }
}

/// The shuffle kernel. 16 symbols per step: pack four `u32x4` symbol
/// vectors into one `u8x16` (indices < 64, so SSE2 signed saturation is
/// exact), run each 16-entry band table through `pshufb` with out-of-band
/// lanes forced negative (the shuffle then writes 0, and OR-merging the
/// bands leaves exactly the owning band's class), compare against the
/// marker class for the bitmask, and widen back to `u16` for the store.
/// The ≤15-token tail of a chunk classifies scalar.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "ssse3")]
unsafe fn classify_chunk_ssse3(
    tables: &[[u8; 16]; 4],
    map: &[u16],
    doc: &[Symbol],
    out: &mut [u16],
    marker: u16,
) -> u64 {
    use std::arch::x86_64::*;
    let n = doc.len();
    let mut mask = 0u64;
    let t: [__m128i; 4] = [
        _mm_loadu_si128(tables[0].as_ptr() as *const __m128i),
        _mm_loadu_si128(tables[1].as_ptr() as *const __m128i),
        _mm_loadu_si128(tables[2].as_ptr() as *const __m128i),
        _mm_loadu_si128(tables[3].as_ptr() as *const __m128i),
    ];
    let marker8 = _mm_set1_epi8(marker as u8 as i8);
    let fifteen = _mm_set1_epi8(15);
    let zero = _mm_setzero_si128();
    let mut k = 0usize;
    while k + 16 <= n {
        // Symbols are #[repr-compatible] u32 indices (Symbol is a
        // transparent-enough newtype: read via the public index, lane by
        // lane is what the scalar kernel does; here we load the raw u32s).
        let base = doc.as_ptr().add(k) as *const __m128i;
        let a = _mm_loadu_si128(base);
        let b = _mm_loadu_si128(base.add(1));
        let c = _mm_loadu_si128(base.add(2));
        let d = _mm_loadu_si128(base.add(3));
        let ab = _mm_packs_epi32(a, b);
        let cd = _mm_packs_epi32(c, d);
        let idx = _mm_packus_epi16(ab, cd);
        // Per-band shuffle. Lanes below a band wrap negative under the
        // subtraction; lanes above get their sign bit forced by the
        // compare-OR — either way pshufb zeroes them, so OR-merging the
        // four bands keeps exactly the owning band's entry.
        let off0 = idx;
        let bad0 = _mm_cmpgt_epi8(off0, fifteen);
        let c0 = _mm_shuffle_epi8(t[0], _mm_or_si128(off0, bad0));
        let off1 = _mm_sub_epi8(idx, _mm_set1_epi8(16));
        let bad1 = _mm_cmpgt_epi8(off1, fifteen);
        let c1 = _mm_shuffle_epi8(t[1], _mm_or_si128(off1, bad1));
        let off2 = _mm_sub_epi8(idx, _mm_set1_epi8(32));
        let bad2 = _mm_cmpgt_epi8(off2, fifteen);
        let c2 = _mm_shuffle_epi8(t[2], _mm_or_si128(off2, bad2));
        let off3 = _mm_sub_epi8(idx, _mm_set1_epi8(48));
        let bad3 = _mm_cmpgt_epi8(off3, fifteen);
        let c3 = _mm_shuffle_epi8(t[3], _mm_or_si128(off3, bad3));
        let cls = _mm_or_si128(_mm_or_si128(c0, c1), _mm_or_si128(c2, c3));

        let eq = _mm_cmpeq_epi8(cls, marker8);
        mask |= (_mm_movemask_epi8(eq) as u32 as u64) << k;

        let out_ptr = out.as_mut_ptr().add(k) as *mut __m128i;
        _mm_storeu_si128(out_ptr, _mm_unpacklo_epi8(cls, zero));
        _mm_storeu_si128(out_ptr.add(1), _mm_unpackhi_epi8(cls, zero));
        k += 16;
    }
    while k < n {
        let class = map[doc[k].index()];
        out[k] = class;
        mask |= u64::from(class == marker) << k;
        k += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::dfa::Dfa;
    use crate::regex::Regex;

    fn classes_for(n: usize, pattern: &str) -> (Alphabet, SymbolClasses) {
        let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
        let a = Alphabet::new(names);
        let d = Dfa::from_regex(&a, &Regex::parse(&a, pattern).unwrap());
        let classes = SymbolClasses::compute(&[&d]);
        (a, classes)
    }

    /// Deterministic pseudo-random word over `n` symbols.
    fn word(n: usize, len: usize, seed: u64) -> Vec<Symbol> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                Symbol::from_index((state.wrapping_mul(0x2545F4914F6CDD1D) % n as u64) as usize)
            })
            .collect()
    }

    #[test]
    fn scalar_kernel_matches_symbol_classes() {
        let (_, classes) = classes_for(8, "[^t0]* t1 .*");
        let c = DenseClassifier::scalar(&classes);
        assert_eq!(c.kind(), "scalar");
        let doc = word(8, 64, 7);
        let mut out = vec![0u16; doc.len()];
        let marker = classes.class_of(Symbol::from_index(1)) as u16;
        let mask = c.classify_chunk(&doc, &mut out, marker);
        for (k, &sym) in doc.iter().enumerate() {
            assert_eq!(u32::from(out[k]), classes.class_of(sym));
            assert_eq!(mask >> k & 1 == 1, u32::from(out[k]) == u32::from(marker));
        }
    }

    #[test]
    fn auto_kernel_agrees_with_scalar_on_every_length() {
        // On a SIMD-capable build this pits the shuffle kernel against the
        // scalar oracle; on any other build both sides are scalar and the
        // test degenerates to self-agreement (still exercising the API).
        for &n in &[2usize, 7, 16, 17, 33, 64] {
            let (_, classes) = classes_for(n, "[^t0]* t1 .*");
            let auto = DenseClassifier::new(&classes);
            let oracle = DenseClassifier::scalar(&classes);
            let marker = classes.class_of(Symbol::from_index(1)) as u16;
            for len in 0..=64usize {
                let doc = word(n, len, 1000 * n as u64 + len as u64);
                let mut got = vec![0u16; len];
                let mut want = vec![0u16; len];
                let got_mask = auto.classify_chunk(&doc, &mut got, marker);
                let want_mask = oracle.classify_chunk(&doc, &mut want, marker);
                assert_eq!(got, want, "|Σ|={n}, len={len}, kernel={}", auto.kind());
                assert_eq!(got_mask, want_mask, "|Σ|={n}, len={len}");
            }
        }
    }

    #[test]
    fn oversized_alphabets_stay_scalar() {
        let (_, classes) = classes_for(65, "[^t0]* t1 .*");
        let c = DenseClassifier::new(&classes);
        assert_eq!(c.kind(), "scalar");
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn simd_kernel_selected_when_supported() {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            return; // runtime fallback is the correct behavior here
        }
        let (_, classes) = classes_for(64, "[^t0]* t1 .*");
        let c = DenseClassifier::new(&classes);
        assert_eq!(c.kind(), "simd-ssse3");
        assert!(c.is_vectorized());
    }
}
