//! Complete deterministic finite automata.
//!
//! Every [`Dfa`] in this crate is **complete** (a transition for every
//! state × symbol, with an explicit dead state where needed) and carries its
//! [`Alphabet`]. Completeness makes complement a bit-flip and universality a
//! reachability scan — the operations the paper's maximality test
//! (Corollary 5.8) leans on.
//!
//! Submodules:
//! * [`determinize`] — subset construction from [`Nfa`],
//! * [`minimize`] — Hopcroft minimization + canonical state numbering (so
//!   equivalent languages produce structurally identical automata),
//! * [`product`] — boolean combinations (∩, ∪, −, symmetric difference) and
//!   complement,
//! * [`quotient`] — prefix/suffix factoring (Definition 5.1),
//! * [`analysis`] — emptiness, universality, inclusion, equivalence,
//!   witnesses, trimming, bounded-marker analysis,
//! * [`to_regex`] — state elimination back to a [`Regex`] for display,
//! * [`dense`] — class-compressed, premultiplied scan tables for the
//!   extraction hot path,
//! * [`classify`] — chunked (optionally SIMD) symbol-class classification
//!   feeding the dense scan.

pub mod analysis;
pub mod classify;
pub mod dense;
pub mod determinize;
pub mod dot;
pub mod minimize;
pub mod product;
pub mod quotient;
pub mod to_regex;

use crate::alphabet::Alphabet;
use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::Symbol;

/// DFA state id (dense index).
pub type StateId = u32;

/// A complete deterministic finite automaton over an explicit alphabet.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Alphabet,
    /// Row-major transition table: `table[q * |Σ| + sym]`.
    table: Vec<StateId>,
    accepting: Vec<bool>,
    start: StateId,
}

impl Dfa {
    /// Construct from raw parts. Validates completeness and ranges.
    pub fn from_parts(
        alphabet: Alphabet,
        table: Vec<StateId>,
        accepting: Vec<bool>,
        start: StateId,
    ) -> Dfa {
        let n = accepting.len();
        assert!(n > 0, "a complete DFA needs at least one state");
        assert_eq!(
            table.len(),
            n * alphabet.len(),
            "transition table size mismatch"
        );
        assert!((start as usize) < n, "start state out of range");
        assert!(
            table.iter().all(|&t| (t as usize) < n),
            "transition target out of range"
        );
        Dfa {
            alphabet,
            table,
            accepting,
            start,
        }
    }

    /// The automaton for the empty language `∅`: one non-accepting sink.
    pub fn empty_lang(alphabet: &Alphabet) -> Dfa {
        Dfa {
            alphabet: alphabet.clone(),
            table: vec![0; alphabet.len()],
            accepting: vec![false],
            start: 0,
        }
    }

    /// The automaton for `Σ*`: one accepting sink.
    pub fn universal(alphabet: &Alphabet) -> Dfa {
        Dfa {
            alphabet: alphabet.clone(),
            table: vec![0; alphabet.len()],
            accepting: vec![true],
            start: 0,
        }
    }

    /// Compile a regex — including extended operators — to a minimal DFA.
    ///
    /// The Thompson fragment goes NFA → subset construction; `And`/`Not`/
    /// `Diff` nodes are lowered with automata products; mixed nodes splice
    /// DFA subresults back into NFA composition. The result is minimized and
    /// canonically numbered.
    pub fn from_regex(alphabet: &Alphabet, regex: &Regex) -> Dfa {
        let nfa = compile_nfa(alphabet, regex);
        determinize::determinize(&nfa).minimized()
    }

    /// The alphabet.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states (including any dead state).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `q` is accepting.
    #[inline]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting[q as usize]
    }

    /// The successor of `q` on `sym`.
    #[inline]
    pub fn next(&self, q: StateId, sym: Symbol) -> StateId {
        self.table[q as usize * self.alphabet.len() + sym.index()]
    }

    /// Run from `q` over `input`, returning the final state.
    pub fn run_from(&self, q: StateId, input: &[Symbol]) -> StateId {
        let mut cur = q;
        for &s in input {
            cur = self.next(cur, s);
        }
        cur
    }

    /// Membership test.
    pub fn accepts(&self, input: &[Symbol]) -> bool {
        self.is_accepting(self.run_from(self.start, input))
    }

    /// Replace the accepting set (same structure). Used by quotients.
    pub(crate) fn with_accepting(&self, accepting: Vec<bool>) -> Dfa {
        assert_eq!(accepting.len(), self.num_states());
        Dfa {
            alphabet: self.alphabet.clone(),
            table: self.table.clone(),
            accepting,
            start: self.start,
        }
    }

    pub(crate) fn accepting_slice(&self) -> &[bool] {
        &self.accepting
    }
}

/// Recursively compile a regex to an NFA, lowering extended operators via
/// DFA products.
fn compile_nfa(alphabet: &Alphabet, regex: &Regex) -> Nfa {
    if !regex.has_extended_ops() {
        return Nfa::thompson(alphabet, regex);
    }
    match regex {
        Regex::And(parts) => {
            let mut acc: Option<Dfa> = None;
            for p in parts {
                let d = Dfa::from_regex(alphabet, p);
                acc = Some(match acc {
                    None => d,
                    Some(a) => a.intersect(&d),
                });
            }
            Nfa::from_dfa(&acc.expect("And is non-empty by construction"))
        }
        Regex::Not(inner) => Nfa::from_dfa(&Dfa::from_regex(alphabet, inner).complement()),
        Regex::Diff(a, b) => {
            let da = Dfa::from_regex(alphabet, a);
            let db = Dfa::from_regex(alphabet, b);
            Nfa::from_dfa(&da.difference(&db))
        }
        Regex::Concat(parts) => {
            nfa_concat(alphabet, parts.iter().map(|p| compile_nfa(alphabet, p)))
        }
        Regex::Alt(parts) => nfa_alt(alphabet, parts.iter().map(|p| compile_nfa(alphabet, p))),
        Regex::Star(inner) => nfa_star(compile_nfa(alphabet, inner)),
        Regex::Plus(inner) => nfa_plus(compile_nfa(alphabet, inner)),
        Regex::Opt(inner) => nfa_opt(compile_nfa(alphabet, inner)),
        // has_extended_ops() returned true, so one of the above matched.
        Regex::Empty | Regex::Epsilon | Regex::Class(_) => unreachable!(),
    }
}

/// Disjoint-union helper: copy `src` into `dst` with a state offset and
/// return (offset starts, offset accepting states).
fn splice(dst: &mut NfaBuilder, src: &Nfa) -> (Vec<u32>, Vec<u32>) {
    let offset = dst.states;
    for _ in 0..src.num_states() {
        dst.push_state();
    }
    let mut accepts = Vec::new();
    for q in 0..src.num_states() as u32 {
        if src.is_accepting(q) {
            accepts.push(q + offset);
        }
        for (set, t) in src.transitions(q) {
            dst.edges.push((q + offset, set.clone(), t + offset));
        }
        for t in src.eps_transitions(q) {
            dst.eps.push((q + offset, t + offset));
        }
    }
    let starts = src.starts().iter().map(|&s| s + offset).collect();
    (starts, accepts)
}

/// Minimal mutable NFA assembly buffer; converted to [`Nfa`] at the end.
struct NfaBuilder {
    alphabet: Alphabet,
    states: u32,
    edges: Vec<(u32, crate::alphabet::SymbolSet, u32)>,
    eps: Vec<(u32, u32)>,
    starts: Vec<u32>,
    accepting: Vec<u32>,
}

impl NfaBuilder {
    fn new(alphabet: &Alphabet) -> Self {
        NfaBuilder {
            alphabet: alphabet.clone(),
            states: 0,
            edges: Vec::new(),
            eps: Vec::new(),
            starts: Vec::new(),
            accepting: Vec::new(),
        }
    }

    fn push_state(&mut self) -> u32 {
        let id = self.states;
        self.states += 1;
        id
    }

    fn build(self) -> Nfa {
        Nfa::assemble(
            self.alphabet,
            self.states,
            self.edges,
            self.eps,
            self.starts,
            self.accepting,
        )
    }
}

fn nfa_concat(alphabet: &Alphabet, parts: impl IntoIterator<Item = Nfa>) -> Nfa {
    let mut b = NfaBuilder::new(alphabet);
    let mut prev_accepts: Option<Vec<u32>> = None;
    let mut first_starts: Option<Vec<u32>> = None;
    let mut last_accepts: Vec<u32> = Vec::new();
    let mut any = false;
    for part in parts {
        any = true;
        let (starts, accepts) = splice(&mut b, &part);
        match prev_accepts.take() {
            None => first_starts = Some(starts),
            Some(pa) => {
                for &a in &pa {
                    for &s in &starts {
                        b.eps.push((a, s));
                    }
                }
            }
        }
        prev_accepts = Some(accepts.clone());
        last_accepts = accepts;
    }
    if !any {
        // Empty concatenation is ε.
        let mut b = NfaBuilder::new(alphabet);
        let s = b.push_state();
        b.starts.push(s);
        b.accepting.push(s);
        return b.build();
    }
    b.starts = first_starts.expect("non-empty concat");
    b.accepting = last_accepts;
    b.build()
}

fn nfa_alt(alphabet: &Alphabet, parts: impl IntoIterator<Item = Nfa>) -> Nfa {
    let mut b = NfaBuilder::new(alphabet);
    for part in parts {
        let (starts, accepts) = splice(&mut b, &part);
        b.starts.extend(starts);
        b.accepting.extend(accepts);
    }
    b.build()
}

fn nfa_star(inner: Nfa) -> Nfa {
    let mut b = NfaBuilder::new(inner.alphabet());
    let (starts, accepts) = splice(&mut b, &inner);
    let hub = b.push_state();
    for &s in &starts {
        b.eps.push((hub, s));
    }
    for &a in &accepts {
        b.eps.push((a, hub));
    }
    b.starts = vec![hub];
    b.accepting = accepts;
    b.accepting.push(hub);
    b.build()
}

fn nfa_plus(inner: Nfa) -> Nfa {
    let mut b = NfaBuilder::new(inner.alphabet());
    let (starts, accepts) = splice(&mut b, &inner);
    let hub = b.push_state();
    for &a in &accepts {
        b.eps.push((a, hub));
    }
    for &s in &starts {
        b.eps.push((hub, s));
    }
    b.starts = starts;
    b.accepting = accepts;
    b.build()
}

fn nfa_opt(inner: Nfa) -> Nfa {
    let mut b = NfaBuilder::new(inner.alphabet());
    let (starts, accepts) = splice(&mut b, &inner);
    let hub = b.push_state();
    b.starts = starts;
    b.starts.push(hub);
    b.accepting = accepts;
    b.accepting.push(hub);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn dfa(s: &str) -> Dfa {
        let a = ab();
        Dfa::from_regex(&a, &Regex::parse(&a, s).unwrap())
    }

    fn accepts(d: &Dfa, s: &str) -> bool {
        d.accepts(&d.alphabet().str_to_syms(s).unwrap())
    }

    #[test]
    fn thompson_fragment_compiles() {
        let d = dfa("(p q)* p .*");
        assert!(accepts(&d, "p"));
        assert!(accepts(&d, "p q p q q"));
        assert!(!accepts(&d, "q"));
        assert!(!accepts(&d, ""));
    }

    #[test]
    fn constants() {
        let a = ab();
        let empty = Dfa::empty_lang(&a);
        let univ = Dfa::universal(&a);
        assert!(!empty.accepts(&[]));
        assert!(univ.accepts(&[]));
        assert!(univ.accepts(&a.str_to_syms("p q p").unwrap()));
    }

    #[test]
    fn extended_complement() {
        let d = dfa("!(p*)");
        assert!(!accepts(&d, ""));
        assert!(!accepts(&d, "p p"));
        assert!(accepts(&d, "q"));
        assert!(accepts(&d, "p q"));
    }

    #[test]
    fn extended_difference_matches_paper_notation() {
        // (Σ−p)* − q : nonempty-q-free strings except the single "q"… wait,
        // [^p]* - q = q-strings of length ≠ 1 over {q}. Concretely over
        // {p,q}: strings without p, minus the string "q".
        let d = dfa("[^p]* - q");
        assert!(accepts(&d, ""));
        assert!(!accepts(&d, "q"));
        assert!(accepts(&d, "q q"));
        assert!(!accepts(&d, "p"));
    }

    #[test]
    fn extended_ops_nested_in_thompson_context() {
        // Concatenation containing a complement subterm.
        let d = dfa("(!(p*)) q");
        assert!(accepts(&d, "q q"));
        assert!(!accepts(&d, "p q")); // "p" ∈ p*, so !(p*) rejects "p"
        assert!(accepts(&d, "p q q"));
        // Star over a difference.
        let d = dfa("(. - p)*");
        assert!(accepts(&d, ""));
        assert!(accepts(&d, "q q"));
        assert!(!accepts(&d, "q p"));
    }

    #[test]
    fn intersection() {
        let d = dfa("(p .*) & (.* q)");
        assert!(accepts(&d, "p q"));
        assert!(accepts(&d, "p p q"));
        assert!(!accepts(&d, "p"));
        assert!(!accepts(&d, "q q"));
    }

    #[test]
    fn run_from_and_next_agree_with_accepts() {
        let a = ab();
        let d = dfa("p q p");
        let input = a.str_to_syms("p q p").unwrap();
        let mut q = d.start();
        for &s in &input {
            q = d.next(q, s);
        }
        assert_eq!(q, d.run_from(d.start(), &input));
        assert!(d.is_accepting(q));
    }

    #[test]
    fn minimality_of_from_regex() {
        // p | p p | p p p over {p,q}: minimal DFA has 5 states
        // (0,1,2,3 p's seen ≥... plus dead). Just sanity-check smallness.
        let d = dfa("p | p p | p p p");
        assert!(
            d.num_states() <= 5,
            "not minimized: {} states",
            d.num_states()
        );
        // Σ* must be the one-state automaton.
        assert_eq!(dfa(".*").num_states(), 1);
        assert_eq!(dfa("[]").num_states(), 1);
    }
}
