//! Subset construction: NFA → complete DFA.
//!
//! Each DFA state is an ε-closed set of NFA states. The empty subset is
//! materialized as an explicit dead state, so the result is always complete.

use super::{Dfa, StateId};
use crate::nfa::Nfa;
use std::collections::HashMap;

/// Determinize `nfa` into a complete (not yet minimized) DFA.
pub fn determinize(nfa: &Nfa) -> Dfa {
    let alphabet = nfa.alphabet().clone();
    let sigma = alphabet.len();

    // Subset keys are sorted state-id vectors (eps_closure returns sorted).
    let mut index: HashMap<Vec<u32>, StateId> = HashMap::new();
    let mut subsets: Vec<Vec<u32>> = Vec::new();
    let mut table: Vec<StateId> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();

    let mut intern = |subset: Vec<u32>,
                      subsets: &mut Vec<Vec<u32>>,
                      accepting: &mut Vec<bool>,
                      work: &mut Vec<StateId>| {
        *index.entry(subset.clone()).or_insert_with(|| {
            let id = subsets.len() as StateId;
            accepting.push(subset.iter().any(|&s| nfa.is_accepting(s)));
            subsets.push(subset);
            work.push(id);
            id
        })
    };

    let mut work: Vec<StateId> = Vec::new();
    let start_subset = nfa.eps_closure(nfa.starts());
    let start = intern(start_subset, &mut subsets, &mut accepting, &mut work);

    let mut cursor = 0;
    while cursor < work.len() {
        let q = work[cursor];
        cursor += 1;
        debug_assert_eq!(table.len(), q as usize * sigma);
        // Targets per symbol for this subset.
        let subset = subsets[q as usize].clone();
        let mut row: Vec<Vec<u32>> = vec![Vec::new(); sigma];
        for &s in &subset {
            for (set, t) in nfa.transitions(s) {
                for sym in set.iter() {
                    let bucket = &mut row[sym.index()];
                    if !bucket.contains(&t) {
                        bucket.push(t);
                    }
                }
            }
        }
        for bucket in row {
            let closed = nfa.eps_closure(&bucket);
            let target = intern(closed, &mut subsets, &mut accepting, &mut work);
            table.push(target);
        }
    }

    Dfa::from_parts(alphabet, table, accepting, start)
}

impl Dfa {
    /// Convenience: determinize an NFA. Does **not** minimize; chain with
    /// [`Dfa::minimized`] when canonical form matters.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        determinize(nfa)
    }
}

/// Exhaustively check (used by tests) that a DFA and an NFA agree on all
/// strings up to `max_len`.
#[cfg(test)]
pub fn agree_up_to(dfa: &Dfa, nfa: &Nfa, max_len: usize) -> bool {
    fn rec(
        dfa: &Dfa,
        nfa: &Nfa,
        prefix: &mut Vec<crate::symbol::Symbol>,
        remaining: usize,
    ) -> bool {
        if dfa.accepts(prefix) != nfa.accepts(prefix) {
            return false;
        }
        if remaining == 0 {
            return true;
        }
        for sym in dfa.alphabet().symbols() {
            prefix.push(sym);
            if !rec(dfa, nfa, prefix, remaining - 1) {
                return false;
            }
            prefix.pop();
        }
        true
    }
    rec(dfa, nfa, &mut Vec::new(), max_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn check(s: &str) {
        let a = ab();
        let nfa = Nfa::thompson(&a, &Regex::parse(&a, s).unwrap());
        let dfa = determinize(&nfa);
        assert!(agree_up_to(&dfa, &nfa, 7), "disagreement for {s}");
    }

    #[test]
    fn agrees_with_nfa_on_paper_expressions() {
        for s in [
            "p q",
            "~",
            "[]",
            "(p q)* p .*",
            "(p | p p) p (p | p p)",
            "[^p]* p .*",
            "p* q",
            "p+ q? p*",
            "(p? q?)*",
        ] {
            check(s);
        }
    }

    #[test]
    fn result_is_complete() {
        let a = ab();
        let nfa = Nfa::thompson(&a, &Regex::parse(&a, "p q").unwrap());
        let dfa = determinize(&nfa);
        for q in 0..dfa.num_states() as StateId {
            for sym in a.symbols() {
                let t = dfa.next(q, sym);
                assert!((t as usize) < dfa.num_states());
            }
        }
    }

    #[test]
    fn multi_start_nfa_determinizes() {
        // Reversal produces multi-start NFAs.
        let a = ab();
        let nfa = Nfa::thompson(&a, &Regex::parse(&a, "p q | q q").unwrap()).reversed();
        let dfa = determinize(&nfa);
        assert!(dfa.accepts(&a.str_to_syms("q p").unwrap()));
        assert!(dfa.accepts(&a.str_to_syms("q q").unwrap()));
        assert!(!dfa.accepts(&a.str_to_syms("p q").unwrap()));
    }

    #[test]
    fn empty_language_is_one_dead_state_after_reach() {
        let a = ab();
        let nfa = Nfa::thompson(&a, &Regex::Empty);
        let dfa = determinize(&nfa);
        assert!(!dfa.accepts(&[]));
        assert!(!dfa.accepts(&a.str_to_syms("p").unwrap()));
    }
}
