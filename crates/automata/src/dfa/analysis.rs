//! Decision procedures and structural analyses on DFAs.
//!
//! * emptiness / universality (Lemma 5.9's `L = Σ*` test — PSPACE-complete
//!   in the *regex*, linear in the *DFA*, which is where the exponential
//!   hides),
//! * inclusion and equivalence with shortest counterexample witnesses,
//! * useful-state (trim) computation,
//! * **bounded-marker analysis**: decides the Algorithm 6.2 precondition
//!   "`E‖ⁿ_p = ∅` for some `n ≥ 0`" (Lemma 6.4(4)) and computes the least
//!   such `n`.

use super::{Dfa, StateId};
use crate::symbol::Symbol;
use std::collections::VecDeque;

impl Dfa {
    /// True iff the language is empty.
    pub fn is_empty_lang(&self) -> bool {
        self.shortest_member().is_none()
    }

    /// True iff the language is `Σ*` (every reachable state accepting, by
    /// completeness).
    pub fn is_universal(&self) -> bool {
        let reach = self.reachable_states();
        (0..self.num_states() as StateId).all(|q| !reach[q as usize] || self.is_accepting(q))
    }

    /// `L(self) ⊆ L(other)`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty_lang()
    }

    /// `L(self) = L(other)`.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.symmetric_difference(other).is_empty_lang()
    }

    /// A shortest accepted string, or `None` if the language is empty.
    /// BFS with parent pointers; deterministic (symbols tried in index
    /// order), so witnesses are stable across runs.
    pub fn shortest_member(&self) -> Option<Vec<Symbol>> {
        if self.is_accepting(self.start()) {
            return Some(Vec::new());
        }
        let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::new();
        seen[self.start() as usize] = true;
        queue.push_back(self.start());
        while let Some(q) = queue.pop_front() {
            for sym in self.alphabet().symbols() {
                let t = self.next(q, sym);
                if seen[t as usize] {
                    continue;
                }
                seen[t as usize] = true;
                parent[t as usize] = Some((q, sym));
                if self.is_accepting(t) {
                    // Reconstruct.
                    let mut out = Vec::new();
                    let mut cur = t;
                    while let Some((p, s)) = parent[cur as usize] {
                        out.push(s);
                        cur = p;
                    }
                    out.reverse();
                    return Some(out);
                }
                queue.push_back(t);
            }
        }
        None
    }

    /// A shortest string on which `self` and `other` disagree, or `None`
    /// if equivalent. Useful as a counterexample for diagnostics.
    pub fn difference_witness(&self, other: &Dfa) -> Option<Vec<Symbol>> {
        self.symmetric_difference(other).shortest_member()
    }

    /// Useful states: reachable from the start *and* co-reachable to an
    /// accepting state.
    pub fn useful_states(&self) -> Vec<bool> {
        let reach = self.reachable_states();
        // Co-reachability by reverse BFS from accepting states.
        let n = self.num_states();
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for q in 0..n as StateId {
            for sym in self.alphabet().symbols() {
                rev[self.next(q, sym) as usize].push(q);
            }
        }
        let mut co = vec![false; n];
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for q in 0..n as StateId {
            if self.is_accepting(q) {
                co[q as usize] = true;
                queue.push_back(q);
            }
        }
        while let Some(q) = queue.pop_front() {
            for &p in &rev[q as usize] {
                if !co[p as usize] {
                    co[p as usize] = true;
                    queue.push_back(p);
                }
            }
        }
        reach.iter().zip(&co).map(|(&r, &c)| r && c).collect()
    }

    /// Is the language finite? True iff the useful subgraph is acyclic
    /// (a useful cycle pumps arbitrarily long members).
    pub fn is_finite_lang(&self) -> bool {
        let useful = self.useful_states();
        // DFS cycle detection over useful states.
        // color: 0 unvisited, 1 on stack, 2 done.
        let n = self.num_states();
        let mut color = vec![0u8; n];
        for root in 0..n {
            if !useful[root] || color[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = 1;
            while let Some(&(v, ci)) = stack.last() {
                let succs: Vec<usize> = self
                    .alphabet()
                    .symbols()
                    .map(|s| self.next(v as StateId, s) as usize)
                    .filter(|&t| useful[t])
                    .collect();
                if ci < succs.len() {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let w = succs[ci];
                    match color[w] {
                        0 => {
                            color[w] = 1;
                            stack.push((w, 0));
                        }
                        1 => return false, // back edge: useful cycle
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Number of members, or `None` when infinite. Counting is a DP over
    /// the (acyclic) useful subgraph; saturates at `u64::MAX`.
    pub fn count_members(&self) -> Option<u64> {
        if !self.is_finite_lang() {
            return None;
        }
        let useful = self.useful_states();
        let n = self.num_states();
        // memoized count of accepted strings from each useful state
        let mut memo: Vec<Option<u64>> = vec![None; n];
        // iterative post-order over the DAG
        fn count(dfa: &Dfa, useful: &[bool], memo: &mut Vec<Option<u64>>, q: usize) -> u64 {
            if let Some(c) = memo[q] {
                return c;
            }
            let mut total: u64 = u64::from(dfa.is_accepting(q as StateId));
            for s in dfa.alphabet().symbols() {
                let t = dfa.next(q as StateId, s) as usize;
                if useful[t] {
                    total = total.saturating_add(count(dfa, useful, memo, t));
                }
            }
            memo[q] = Some(total);
            total
        }
        if !useful[self.start() as usize] {
            return Some(0);
        }
        Some(count(self, &useful, &mut memo, self.start() as usize))
    }

    /// The largest number of `marker` occurrences in any accepted string,
    /// or `None` if unbounded.
    ///
    /// This decides the Algorithm 6.2 precondition: by Lemma 6.4(4–5),
    /// `E‖ⁿ_p = ∅` for some `n` iff the `p`-count of members of `L(E)` is
    /// bounded, and then the least such `n` is `max_count + 1`. An empty
    /// language returns `Some(0)`.
    ///
    /// Method: restrict to useful states. If any `marker`-labeled edge lies
    /// on a cycle of the useful subgraph, pumping that cycle makes the count
    /// unbounded. Otherwise the count is the longest `marker`-weighted path
    /// from the start to an accepting state, computed by DP over the
    /// strongly-connected-component condensation (intra-SCC edges all have
    /// weight 0 once the cycle check passes).
    pub fn max_marker_count(&self, marker: Symbol) -> Option<usize> {
        let useful = self.useful_states();
        if !useful[self.start() as usize] {
            return Some(0); // empty language
        }
        let n = self.num_states();

        // Edges of the useful subgraph, weighted by marker occurrence.
        let mut edges: Vec<Vec<(StateId, usize)>> = vec![Vec::new(); n];
        for q in 0..n as StateId {
            if !useful[q as usize] {
                continue;
            }
            for sym in self.alphabet().symbols() {
                let t = self.next(q, sym);
                if useful[t as usize] {
                    edges[q as usize].push((t, usize::from(sym == marker)));
                }
            }
        }

        let scc = tarjan_scc(n, &edges, &useful);

        // A weighted edge inside an SCC is on a cycle ⇒ unbounded.
        for q in 0..n {
            for &(t, w) in &edges[q] {
                if w > 0 && scc[q] == scc[t as usize] && scc[q] != usize::MAX {
                    return None;
                }
            }
        }

        // DP over the condensation: best[c] = max marker-weight of a path
        // from component c to an accepting state. Tarjan numbers components
        // in reverse topological order (successors get smaller ids), so a
        // forward scan over component ids processes successors first.
        let num_comps = scc
            .iter()
            .filter(|&&c| c != usize::MAX)
            .map(|&c| c + 1)
            .max()
            .unwrap_or(0);
        let mut best: Vec<Option<usize>> = vec![None; num_comps];
        // Seed: components containing an accepting useful state can end.
        for q in 0..n {
            if useful[q] && self.is_accepting(q as StateId) {
                best[scc[q]] = Some(0);
            }
        }
        // Process components in increasing id (reverse topological) order.
        for c in 0..num_comps {
            let mut acc = best[c];
            for q in 0..n {
                if scc[q] != c {
                    continue;
                }
                for &(t, w) in &edges[q] {
                    let tc = scc[t as usize];
                    if tc == c {
                        continue; // intra-SCC edges have w = 0 here
                    }
                    if let Some(b) = best[tc] {
                        let cand = b + w;
                        acc = Some(acc.map_or(cand, |a| a.max(cand)));
                    }
                }
            }
            best[c] = acc;
        }
        Some(best[scc[self.start() as usize]].unwrap_or(0))
    }
}

/// Iterative Tarjan SCC over the useful subgraph. Returns component ids in
/// reverse topological order (a component's successors have smaller ids);
/// non-useful states get `usize::MAX`.
fn tarjan_scc(n: usize, edges: &[Vec<(StateId, usize)>], useful: &[bool]) -> Vec<usize> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Explicit DFS stack: (node, next child position). Nodes are
    // "discovered" (index assigned, pushed on the Tarjan stack) at the
    // moment they enter the DFS stack.
    let mut discover = |v: usize,
                        index: &mut Vec<usize>,
                        low: &mut Vec<usize>,
                        stack: &mut Vec<usize>,
                        on_stack: &mut Vec<bool>| {
        index[v] = next_index;
        low[v] = next_index;
        next_index += 1;
        stack.push(v);
        on_stack[v] = true;
    };

    for root in 0..n {
        if !useful[root] || index[root] != UNVISITED {
            continue;
        }
        discover(root, &mut index, &mut low, &mut stack, &mut on_stack);
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = dfs.last() {
            if ci < edges[v].len() {
                dfs.last_mut().expect("non-empty").1 += 1;
                let w = edges[v][ci].0 as usize;
                if index[w] == UNVISITED {
                    discover(w, &mut index, &mut low, &mut stack, &mut on_stack);
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn d(s: &str) -> Dfa {
        let a = ab();
        Dfa::from_regex(&a, &Regex::parse(&a, s).unwrap())
    }

    #[test]
    fn emptiness_and_universality() {
        assert!(d("[]").is_empty_lang());
        assert!(!d("~").is_empty_lang());
        assert!(d(".*").is_universal());
        assert!(d("~ | . .*").is_universal());
        assert!(!d("p .*").is_universal());
        assert!(d("p* & q+").is_empty_lang());
    }

    #[test]
    fn inclusion_and_equivalence() {
        assert!(d("(p q)+").is_subset_of(&d("(p q)*")));
        assert!(!d("(p q)*").is_subset_of(&d("(p q)+")));
        assert!(d("p p*").equivalent(&d("p+")));
        assert!(!d("p*").equivalent(&d("p+")));
    }

    #[test]
    fn shortest_member_is_shortest_and_deterministic() {
        let a = ab();
        assert_eq!(d("~").shortest_member(), Some(vec![]));
        assert_eq!(d("[]").shortest_member(), None);
        let w = d("(p q)+").shortest_member().unwrap();
        assert_eq!(a.syms_to_str(&w), "p q");
        // ties broken by symbol order: p before q
        let w = d("p | q").shortest_member().unwrap();
        assert_eq!(a.syms_to_str(&w), "p");
    }

    #[test]
    fn difference_witness_finds_counterexample() {
        let a = ab();
        let w = d("p*").difference_witness(&d("p+")).unwrap();
        assert_eq!(a.syms_to_str(&w), "");
        assert!(d("p+").difference_witness(&d("p p*")).is_none());
    }

    #[test]
    fn useful_states_exclude_dead_ends() {
        // p q over {p,q}: states on the accept path are useful; the dead
        // sink is not.
        let dfa = d("p q");
        let useful = dfa.useful_states();
        let n_useful = useful.iter().filter(|&&u| u).count();
        assert_eq!(n_useful, 3); // start, after-p, accept
    }

    #[test]
    fn marker_bound_literal_and_star() {
        let a = ab();
        let p = a.sym("p");
        assert_eq!(d("p q p").max_marker_count(p), Some(2));
        assert_eq!(d("q*").max_marker_count(p), Some(0));
        assert_eq!(d("[]").max_marker_count(p), Some(0));
        assert_eq!(d("p*").max_marker_count(p), None);
        assert_eq!(d("(q p)*").max_marker_count(p), None);
        assert_eq!(d("q* p q*").max_marker_count(p), Some(1));
        assert_eq!(d("(p | p p) q*").max_marker_count(p), Some(2));
        // p under a star of q only — bounded even with cycles elsewhere.
        assert_eq!(d("q* p q* p q*").max_marker_count(p), Some(2));
    }

    #[test]
    fn marker_bound_ignores_useless_paths() {
        let a = ab();
        let p = a.sym("p");
        // The p-cycle is not co-reachable to acceptance: (p p)* q & q = q.
        assert_eq!(d("((p p)* q) & q").max_marker_count(p), Some(0));
    }

    #[test]
    fn marker_bound_alternation_takes_max() {
        let a = ab();
        let p = a.sym("p");
        assert_eq!(d("p p p | q p").max_marker_count(p), Some(3));
        assert_eq!(d("q | p p p p").max_marker_count(p), Some(4));
    }

    #[test]
    fn marker_bound_q_unbounded_p_bounded() {
        let a = ab();
        assert_eq!(d("q* p q*").max_marker_count(a.sym("q")), None);
        assert_eq!(d("q* p q*").max_marker_count(a.sym("p")), Some(1));
    }
}
