//! Boolean combinations of DFAs via the product construction, plus
//! complement.
//!
//! Only the part of the product reachable from the joint start is built.
//! All results are complete (inputs are complete); callers that need
//! canonical form chain [`Dfa::minimized`].

use super::{Dfa, StateId};
use std::collections::HashMap;

impl Dfa {
    /// Complement relative to `Σ*`. O(n): flips acceptance on the complete
    /// automaton.
    pub fn complement(&self) -> Dfa {
        let accepting = self.accepting_slice().iter().map(|&b| !b).collect();
        self.with_accepting(accepting)
    }

    /// `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// `L(self) − L(other)` — the paper's `E1 − E2`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    /// Symmetric difference; empty iff the languages are equal. Used for
    /// equivalence witnesses.
    pub fn symmetric_difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a != b)
    }

    /// Count the states of the reachable product `self × other` without
    /// materializing it, giving up as soon as the count exceeds `cap`.
    ///
    /// This is the extraction engine's product-mode feasibility probe:
    /// one-pass extraction simulates the `E1 × E2` product, and the probe
    /// decides — at `Extractor::compile` time, against a size cutoff —
    /// whether that simulation stays small enough to beat the fused
    /// two-automaton scan. Unlike subset construction the pair product
    /// cannot explode past `|Q1|·|Q2|`, so the walk always terminates;
    /// `cap` merely lets callers stop early.
    pub fn product_reachable_size(&self, other: &Dfa, cap: usize) -> Option<usize> {
        assert!(
            self.alphabet().compatible(other.alphabet()),
            "product over incompatible alphabets"
        );
        let mut seen: HashMap<(StateId, StateId), ()> = HashMap::new();
        let mut frontier: Vec<(StateId, StateId)> = Vec::new();
        let start = (self.start(), other.start());
        seen.insert(start, ());
        frontier.push(start);
        if seen.len() > cap {
            return None;
        }
        while let Some((q1, q2)) = frontier.pop() {
            for sym in self.alphabet().symbols() {
                let t = (self.next(q1, sym), other.next(q2, sym));
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(t) {
                    e.insert(());
                    frontier.push(t);
                    if seen.len() > cap {
                        return None;
                    }
                }
            }
        }
        Some(seen.len())
    }

    /// Reachable product automaton with acceptance combined by `accept`.
    pub fn product(&self, other: &Dfa, accept: impl Fn(bool, bool) -> bool) -> Dfa {
        assert!(
            self.alphabet().compatible(other.alphabet()),
            "product over incompatible alphabets"
        );
        let sigma = self.alphabet().len();
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut pairs: Vec<(StateId, StateId)> = Vec::new();
        let mut table: Vec<StateId> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        let mut intern = |pair: (StateId, StateId),
                          pairs: &mut Vec<(StateId, StateId)>,
                          accepting: &mut Vec<bool>| {
            *index.entry(pair).or_insert_with(|| {
                let id = pairs.len() as StateId;
                pairs.push(pair);
                accepting.push(accept(
                    self.is_accepting(pair.0),
                    other.is_accepting(pair.1),
                ));
                id
            })
        };

        let start = intern((self.start(), other.start()), &mut pairs, &mut accepting);
        let mut cursor = 0usize;
        while cursor < pairs.len() {
            let (q1, q2) = pairs[cursor];
            debug_assert_eq!(table.len(), cursor * sigma);
            for sym in self.alphabet().symbols() {
                let t = (self.next(q1, sym), other.next(q2, sym));
                let id = intern(t, &mut pairs, &mut accepting);
                table.push(id);
            }
            cursor += 1;
        }
        Dfa::from_parts(self.alphabet().clone(), table, accepting, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;
    use crate::symbol::Symbol;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn d(s: &str) -> Dfa {
        let a = ab();
        Dfa::from_regex(&a, &Regex::parse(&a, s).unwrap())
    }

    fn all_strings(a: &Alphabet, max_len: usize) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = vec![vec![]];
        let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &layer {
                for s in a.symbols() {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }

    #[test]
    fn boolean_ops_agree_with_definitions() {
        let a = ab();
        let x = d("(p q)* p?");
        let y = d("p .* | q");
        let inter = x.intersect(&y);
        let uni = x.union(&y);
        let diff = x.difference(&y);
        let sym = x.symmetric_difference(&y);
        let comp = x.complement();
        for w in all_strings(&a, 6) {
            let (ix, iy) = (x.accepts(&w), y.accepts(&w));
            assert_eq!(inter.accepts(&w), ix && iy);
            assert_eq!(uni.accepts(&w), ix || iy);
            assert_eq!(diff.accepts(&w), ix && !iy);
            assert_eq!(sym.accepts(&w), ix != iy);
            assert_eq!(comp.accepts(&w), !ix);
        }
    }

    #[test]
    fn de_morgan() {
        let a = ab();
        let x = d("p* q");
        let y = d("(q p)*");
        let lhs = x.union(&y).complement().minimized();
        let rhs = x.complement().intersect(&y.complement()).minimized();
        assert!(lhs.same_canonical(&rhs));
        let _ = a;
    }

    #[test]
    fn complement_is_involution() {
        let x = d("(p | q q)*");
        assert!(x
            .complement()
            .complement()
            .minimized()
            .same_canonical(&x.minimized()));
    }

    #[test]
    fn difference_with_self_is_empty() {
        let x = d("(p q)+");
        let diff = x.difference(&x).minimized();
        assert!(diff.same_canonical(&d("[]")));
    }

    #[test]
    fn reachable_size_matches_materialized_product() {
        for (l, r) in [
            ("(p q)* p?", "p .* | q"),
            (".*", "q*"),
            ("[^p]*", ".*"),
            ("p p p", "q q"),
        ] {
            let x = d(l);
            let y = d(r);
            let want = x.product(&y, |a, b| a && b).num_states();
            assert_eq!(
                x.product_reachable_size(&y, usize::MAX),
                Some(want),
                "{l} × {r}"
            );
            // At exactly the size the probe succeeds; one below it bails.
            assert_eq!(x.product_reachable_size(&y, want), Some(want));
            assert_eq!(x.product_reachable_size(&y, want - 1), None);
        }
    }

    #[test]
    #[should_panic(expected = "incompatible alphabets")]
    fn rejects_incompatible_alphabets() {
        let a1 = Alphabet::new(["p", "q"]);
        let a2 = Alphabet::new(["p"]);
        let x = Dfa::universal(&a1);
        let y = Dfa::universal(&a2);
        let _ = x.intersect(&y);
    }
}
