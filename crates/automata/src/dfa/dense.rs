//! Dense, class-compressed DFAs for the extraction hot path.
//!
//! A wrapper's alphabet has one entry per distinct tag name seen in
//! training — typically 16–64 symbols — but the automata that matter at
//! serve time distinguish far fewer *behaviours*: in `([^p]* t_i)^k [^p]*`
//! every non-anchor, non-marker tag has an identical transition column.
//! [`SymbolClasses`] computes that partition **jointly over a set of
//! DFAs** (symbols collapse only when their columns agree in *every*
//! automaton), and [`DenseDfa`] recompiles each DFA against the shared
//! class table.
//!
//! Two further scan-loop tricks, both standard in production regex
//! engines:
//!
//! * **Premultiplied state ids.** Table entries store `state × C` (for
//!   `C` classes), so stepping is `table[(state + class)]` with no
//!   multiply in the loop.
//! * **Ordered state numbering.** States are renumbered so accepting
//!   states come first and dead states (those from which no accepting
//!   state is reachable) come last; `is_accepting` and `is_dead` are then
//!   single integer comparisons instead of bitset probes.

use crate::alphabet::Alphabet;
use crate::dfa::{Dfa, StateId};
use crate::symbol::Symbol;
use std::collections::HashMap;

/// A partition of an alphabet into transition-equivalence classes,
/// computed jointly over a set of DFAs: two symbols share a class iff
/// their transition columns agree in **every** DFA of the set.
///
/// Classes are numbered in order of first appearance by symbol index, so
/// the partition is deterministic.
#[derive(Debug, Clone)]
pub struct SymbolClasses {
    /// `map[sym.index()]` is the class of `sym`.
    map: Vec<u32>,
    num_classes: u32,
}

impl SymbolClasses {
    /// The trivial partition: every symbol its own class.
    pub fn identity(alphabet: &Alphabet) -> SymbolClasses {
        SymbolClasses {
            map: (0..alphabet.len() as u32).collect(),
            num_classes: alphabet.len() as u32,
        }
    }

    /// Compute the joint partition over `dfas` (all over compatible
    /// alphabets; at least one DFA required).
    pub fn compute(dfas: &[&Dfa]) -> SymbolClasses {
        let first = dfas.first().expect("need at least one DFA");
        let alphabet = first.alphabet();
        for d in &dfas[1..] {
            assert!(
                alphabet.compatible(d.alphabet()),
                "symbol classes require compatible alphabets"
            );
        }
        let mut map = Vec::with_capacity(alphabet.len());
        let mut seen: HashMap<Vec<StateId>, u32> = HashMap::new();
        for sym in alphabet.symbols() {
            // The symbol's signature: its transition column in every DFA,
            // concatenated. Identical signatures ⇒ indistinguishable by
            // any of the automata ⇒ same class.
            let mut signature = Vec::new();
            for d in dfas {
                for q in 0..d.num_states() as StateId {
                    signature.push(d.next(q, sym));
                }
            }
            let next_class = seen.len() as u32;
            map.push(*seen.entry(signature).or_insert(next_class));
        }
        let num_classes = seen.len() as u32;
        SymbolClasses { map, num_classes }
    }

    /// Number of classes in the partition.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// Number of symbols in the underlying alphabet.
    #[inline]
    pub fn num_symbols(&self) -> usize {
        self.map.len()
    }

    /// The class of `sym`.
    #[inline]
    pub fn class_of(&self, sym: Symbol) -> u32 {
        self.map[sym.index()]
    }

    /// Classify a document in one pass, reusing `out`'s capacity.
    pub fn classify_into(&self, doc: &[Symbol], out: &mut Vec<u32>) {
        out.clear();
        out.extend(doc.iter().map(|&s| self.map[s.index()]));
    }

    /// Give `sym` a singleton class, appending a fresh class id if it
    /// currently shares one. Refining a partition that was at least as
    /// fine as every member DFA's column partition keeps it so, so
    /// [`DenseDfa::compile`] remains correct; the extraction engine uses
    /// this to make "is this position the marker?" a class-id compare.
    pub fn isolate(&mut self, sym: Symbol) {
        let class = self.map[sym.index()];
        let shared = self
            .map
            .iter()
            .enumerate()
            .any(|(i, &c)| c == class && i != sym.index());
        if shared {
            self.map[sym.index()] = self.num_classes;
            self.num_classes += 1;
        }
    }

    /// A representative symbol per class, in class order.
    fn representatives(&self) -> Vec<Symbol> {
        let mut reps = vec![None; self.num_classes as usize];
        for (i, &c) in self.map.iter().enumerate() {
            reps[c as usize].get_or_insert(Symbol::from_index(i));
        }
        reps.into_iter()
            .map(|r| r.expect("every class has a representative"))
            .collect()
    }
}

/// A [`Dfa`] recompiled for the scan loop: class-remapped, premultiplied,
/// row-major `u32` transitions with comparison-only accepting/dead tests.
///
/// States are *premultiplied*: a state is represented as `index × C`
/// where `C` is the class count, so [`DenseDfa::next`] is a single
/// indexed load. The renumbering places accepting states first and dead
/// states last:
///
/// ```text
/// [ accepting | live non-accepting | dead ]
///   s < accept_limit            s >= dead_limit
/// ```
#[derive(Debug, Clone)]
pub struct DenseDfa {
    /// `table[s + c]` for premultiplied state `s` and class `c`: the
    /// premultiplied successor.
    table: Vec<u32>,
    /// Premultiplied start state.
    start: u32,
    /// `s < accept_limit` ⇔ accepting (premultiplied bound).
    accept_limit: u32,
    /// `s >= dead_limit` ⇔ dead: no accepting state reachable from `s`
    /// (premultiplied bound).
    dead_limit: u32,
    num_states: u32,
    num_classes: u32,
}

impl DenseDfa {
    /// Compile `dfa` against a precomputed class partition. The partition
    /// must be at least as fine as `dfa`'s own column partition — which
    /// [`SymbolClasses::compute`] guarantees whenever `dfa` was in the
    /// set it was computed over.
    pub fn compile(dfa: &Dfa, classes: &SymbolClasses) -> DenseDfa {
        assert_eq!(
            classes.num_symbols(),
            dfa.alphabet().len(),
            "class table / alphabet size mismatch"
        );
        let n = dfa.num_states();
        // An empty alphabet still needs C ≥ 1 so premultiplied state ids
        // stay distinct (s × 0 would conflate every state).
        let c = (classes.num_classes() as u32).max(1);

        // Dead = not co-reachable: reverse BFS from the accepting states.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for q in 0..n as StateId {
            for sym in dfa.alphabet().symbols() {
                rev[dfa.next(q, sym) as usize].push(q);
            }
        }
        let mut alive = vec![false; n];
        let mut queue: Vec<StateId> = Vec::new();
        for q in 0..n as StateId {
            if dfa.is_accepting(q) {
                alive[q as usize] = true;
                queue.push(q);
            }
        }
        while let Some(q) = queue.pop() {
            for &p in &rev[q as usize] {
                if !alive[p as usize] {
                    alive[p as usize] = true;
                    queue.push(p);
                }
            }
        }

        // Renumber: accepting, then live non-accepting, then dead.
        let mut order: Vec<StateId> = (0..n as StateId).collect();
        let rank = |q: StateId| -> u8 {
            if dfa.is_accepting(q) {
                0
            } else if alive[q as usize] {
                1
            } else {
                2
            }
        };
        order.sort_by_key(|&q| (rank(q), q));
        let mut new_index = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            new_index[old as usize] = new as u32;
        }
        let accepting = (0..n as StateId).filter(|&q| dfa.is_accepting(q)).count() as u32;
        let dead = (0..n).filter(|&q| !alive[q]).count() as u32;

        let reps = classes.representatives();
        let mut table = vec![0u32; n * c as usize];
        for &old in &order {
            let row = new_index[old as usize] * c;
            for (ci, &rep) in reps.iter().enumerate() {
                table[(row + ci as u32) as usize] = new_index[dfa.next(old, rep) as usize] * c;
            }
        }
        DenseDfa {
            table,
            start: new_index[dfa.start() as usize] * c,
            accept_limit: accepting * c,
            dead_limit: (n as u32 - dead) * c,
            num_states: n as u32,
            num_classes: c,
        }
    }

    /// The premultiplied start state.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Step from premultiplied state `s` on class `c`.
    #[inline]
    pub fn next(&self, s: u32, class: u32) -> u32 {
        self.table[(s + class) as usize]
    }

    /// Whether premultiplied state `s` is accepting.
    #[inline]
    pub fn is_accepting(&self, s: u32) -> bool {
        s < self.accept_limit
    }

    /// Whether premultiplied state `s` is dead — no accepting state is
    /// reachable from it, so a scan can stop the moment it gets here.
    #[inline]
    pub fn is_dead(&self, s: u32) -> bool {
        s >= self.dead_limit
    }

    /// Whether the automaton has any dead state at all.
    #[inline]
    pub fn has_dead_state(&self) -> bool {
        self.dead_limit < self.num_states * self.num_classes
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.num_states as usize
    }

    /// Number of symbol classes the table is indexed by.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// Membership test over a *classified* word (test/debug aid; the
    /// production scan loops live in `rextract-extraction`).
    pub fn accepts_classes(&self, classes: &[u32]) -> bool {
        let mut s = self.start;
        for &c in classes {
            s = self.next(s, c);
        }
        self.is_accepting(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::sample::Sampler;
    use crate::Lang;

    fn dfa(alphabet: &Alphabet, text: &str) -> Dfa {
        Dfa::from_regex(alphabet, &Regex::parse(alphabet, text).unwrap())
    }

    #[test]
    fn universal_dfa_collapses_to_one_class() {
        let a = Alphabet::new(["p", "q", "r", "s"]);
        let d = dfa(&a, ".*");
        let classes = SymbolClasses::compute(&[&d]);
        assert_eq!(classes.num_classes(), 1);
        for sym in a.symbols() {
            assert_eq!(classes.class_of(sym), 0);
        }
    }

    #[test]
    fn distinct_columns_stay_distinct() {
        // table[q][sym] = sym's own index: every column differs.
        let a = Alphabet::new(["a", "b", "c"]);
        let d = Dfa::from_parts(
            a.clone(),
            vec![0, 1, 2, 0, 1, 2, 0, 1, 2],
            vec![true, false, false],
            0,
        );
        let classes = SymbolClasses::compute(&[&d]);
        assert_eq!(classes.num_classes(), 3);
        let ids: Vec<u32> = a.symbols().map(|s| classes.class_of(s)).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn joint_computation_refines_the_partition() {
        let a = Alphabet::new(["p", "q", "r"]);
        // Alone, `[^p]*` only separates p from {q, r}…
        let left = dfa(&a, "[^p]*");
        assert_eq!(SymbolClasses::compute(&[&left]).num_classes(), 2);
        // …but jointly with `q*` the q column must also split off.
        let right = dfa(&a, "q*");
        let joint = SymbolClasses::compute(&[&left, &right]);
        assert_eq!(joint.num_classes(), 3);
    }

    #[test]
    fn partial_collapse_on_anchored_language() {
        // Over 6 symbols, `[^p]* t0 .*` distinguishes p, t0, and
        // everything-else: exactly 3 classes.
        let a = Alphabet::new(["p", "t0", "t1", "t2", "t3", "t4"]);
        let d = dfa(&a, "[^p]* t0 .*");
        let classes = SymbolClasses::compute(&[&d]);
        assert_eq!(classes.num_classes(), 3);
        assert_eq!(
            classes.class_of(a.sym("t2")),
            classes.class_of(a.sym("t4")),
            "interchangeable noise symbols must share a class"
        );
        assert_ne!(classes.class_of(a.sym("p")), classes.class_of(a.sym("t0")));
    }

    #[test]
    fn isolate_splits_shared_classes_only() {
        let a = Alphabet::new(["p", "q", "r", "s"]);
        let d = dfa(&a, ".*");
        let mut classes = SymbolClasses::compute(&[&d]);
        assert_eq!(classes.num_classes(), 1);
        classes.isolate(a.sym("p"));
        assert_eq!(classes.num_classes(), 2);
        let p_class = classes.class_of(a.sym("p"));
        for sym in a.symbols() {
            assert_eq!(classes.class_of(sym) == p_class, sym == a.sym("p"));
        }
        // Already-singleton: a second isolate is a no-op.
        classes.isolate(a.sym("p"));
        assert_eq!(classes.num_classes(), 2);
        // The compiled DFA still agrees with the source on random words.
        let dense = DenseDfa::compile(&d, &classes);
        let mut sampler = Sampler::new(&Lang::universe(&a), 5, 9);
        let mut buf = Vec::new();
        for _ in 0..100 {
            let w = sampler.sample().unwrap();
            classes.classify_into(&w, &mut buf);
            assert_eq!(dense.accepts_classes(&buf), d.accepts(&w));
        }
    }

    #[test]
    fn dense_agrees_with_source_dfa_on_random_words() {
        let a = Alphabet::new(["p", "q", "r"]);
        for text in ["[^p]* p .*", "(q p)* | r", "q* - q q", "(p | q) r*"] {
            let d = dfa(&a, text);
            let classes = SymbolClasses::compute(&[&d]);
            let dense = DenseDfa::compile(&d, &classes);
            assert_eq!(dense.num_states(), d.num_states());
            let mut sampler = Sampler::new(&Lang::universe(&a), 7, 10);
            let mut buf = Vec::new();
            for _ in 0..200 {
                let w = sampler.sample().unwrap();
                classes.classify_into(&w, &mut buf);
                assert_eq!(
                    dense.accepts_classes(&buf),
                    d.accepts(&w),
                    "mismatch for {text} on {:?}",
                    a.syms_to_str(&w)
                );
            }
        }
    }

    #[test]
    fn dead_state_is_identified_and_absorbing() {
        let a = Alphabet::new(["p", "q"]);
        // Finite language: the minimal DFA needs a dead sink.
        let d = dfa(&a, "q p");
        let classes = SymbolClasses::compute(&[&d]);
        let dense = DenseDfa::compile(&d, &classes);
        assert!(dense.has_dead_state());
        // Drive it to death: "p" from start cannot be extended to "q p".
        let s = dense.next(dense.start(), classes.class_of(a.sym("p")));
        assert!(dense.is_dead(s));
        // Dead is absorbing for every class.
        for c in 0..dense.num_classes() as u32 {
            assert!(dense.is_dead(dense.next(s, c)));
        }
        // The live prefix "q" is not dead, and "q p" accepts.
        let q = dense.next(dense.start(), classes.class_of(a.sym("q")));
        assert!(!dense.is_dead(q));
        assert!(dense.is_accepting(dense.next(q, classes.class_of(a.sym("p")))));
    }

    #[test]
    fn empty_and_universal_edge_cases() {
        let a = Alphabet::new(["p", "q"]);
        let empty = DenseDfa::compile(&Dfa::empty_lang(&a), &SymbolClasses::identity(&a));
        assert!(empty.is_dead(empty.start()), "∅ is dead from the start");
        assert!(!empty.is_accepting(empty.start()));
        let univ_dfa = Dfa::universal(&a);
        let univ = DenseDfa::compile(&univ_dfa, &SymbolClasses::compute(&[&univ_dfa]));
        assert!(univ.is_accepting(univ.start()));
        assert!(!univ.has_dead_state());
        assert_eq!(univ.num_classes(), 1);
    }

    #[test]
    fn accepting_first_ordering_survives_mixed_automata() {
        let a = Alphabet::new(["p", "q"]);
        // Multiple accepting and non-accepting states, plus a dead sink.
        let d = dfa(&a, "q q* p p*");
        let classes = SymbolClasses::compute(&[&d]);
        let dense = DenseDfa::compile(&d, &classes);
        let mut sampler = Sampler::new(&Lang::universe(&a), 3, 8);
        let mut buf = Vec::new();
        for _ in 0..100 {
            let w = sampler.sample().unwrap();
            classes.classify_into(&w, &mut buf);
            assert_eq!(dense.accepts_classes(&buf), d.accepts(&w));
        }
    }
}
