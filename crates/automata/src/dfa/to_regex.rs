//! DFA → regex conversion by state elimination (Brzozowski–McCluskey).
//!
//! The paper's synthesis algorithms (Section 6) operate on automata; this
//! module converts results back to readable [`Regex`] form for display and
//! for the `to_text` reporting used in examples and EXPERIMENTS.md. The
//! produced regex can be exponentially larger than the DFA in the worst
//! case; elimination order (fewest in×out edges first) plus
//! [`Regex::simplified`] keeps practical outputs small.

use super::{Dfa, StateId};
use crate::regex::Regex;

impl Dfa {
    /// A regex denoting exactly this automaton's language.
    pub fn to_regex(&self) -> Regex {
        let useful = self.useful_states();
        if !useful[self.start() as usize] {
            return Regex::Empty;
        }

        // Generalized NFA over useful states + fresh init/final.
        // Node ids: 0 = init, 1 = final, useful state q = map[q].
        let n = self.num_states();
        let mut map = vec![usize::MAX; n];
        let mut nodes = 2usize;
        for q in 0..n {
            if useful[q] {
                map[q] = nodes;
                nodes += 1;
            }
        }

        // Edge regexes, keyed (from, to); parallel edges join by union.
        let mut edge: std::collections::HashMap<(usize, usize), Regex> =
            std::collections::HashMap::new();
        let add = |from: usize,
                   to: usize,
                   r: Regex,
                   edge: &mut std::collections::HashMap<(usize, usize), Regex>| {
            if r == Regex::Empty {
                return;
            }
            edge.entry((from, to))
                .and_modify(|e| *e = Regex::alt([e.clone(), r.clone()]))
                .or_insert(r);
        };

        add(0, map[self.start() as usize], Regex::Epsilon, &mut edge);
        for q in 0..n as StateId {
            if !useful[q as usize] {
                continue;
            }
            if self.is_accepting(q) {
                add(map[q as usize], 1, Regex::Epsilon, &mut edge);
            }
            // Group symbols by useful target into classes.
            let mut by_target: std::collections::HashMap<usize, crate::alphabet::SymbolSet> =
                std::collections::HashMap::new();
            for sym in self.alphabet().symbols() {
                let t = self.next(q, sym);
                if useful[t as usize] {
                    by_target
                        .entry(map[t as usize])
                        .or_insert_with(|| self.alphabet().empty_set())
                        .insert(sym);
                }
            }
            for (t, set) in by_target {
                add(map[q as usize], t, Regex::class(set), &mut edge);
            }
        }

        // Eliminate internal nodes, cheapest (in-degree × out-degree) first.
        let mut alive: Vec<usize> = (2..nodes).collect();
        while !alive.is_empty() {
            // Pick the node with fewest in×out edges among alive nodes.
            let (pos, &v) = alive
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| {
                    let ins = edge.keys().filter(|&&(f, t)| t == v && f != v).count();
                    let outs = edge.keys().filter(|&&(f, t)| f == v && t != v).count();
                    ins * outs
                })
                .expect("alive non-empty");
            alive.swap_remove(pos);

            let self_loop = edge.remove(&(v, v));
            let loop_star = match self_loop {
                Some(r) => r.star(),
                None => Regex::Epsilon,
            };
            let ins: Vec<(usize, Regex)> = edge
                .iter()
                .filter(|&(&(f, t), _)| t == v && f != v)
                .map(|(&(f, _), r)| (f, r.clone()))
                .collect();
            let outs: Vec<(usize, Regex)> = edge
                .iter()
                .filter(|&(&(f, t), _)| f == v && t != v)
                .map(|(&(_, t), r)| (t, r.clone()))
                .collect();
            edge.retain(|&(f, t), _| f != v && t != v);
            for (f, rin) in &ins {
                for (t, rout) in &outs {
                    let r = Regex::concat([rin.clone(), loop_star.clone(), rout.clone()]);
                    add(*f, *t, r, &mut edge);
                }
            }
        }

        let core = edge.get(&(0, 1)).cloned().unwrap_or(Regex::Empty);
        // init/final are fresh, so any remaining self-loops on them are
        // impossible; (0,1) is the whole language.
        core.simplified()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn round_trip(s: &str) {
        let a = ab();
        let re = Regex::parse(&a, s).unwrap();
        let d = Dfa::from_regex(&a, &re);
        let back = d.to_regex();
        let d2 = Dfa::from_regex(&a, &back);
        assert!(
            d.minimized().same_canonical(&d2.minimized()),
            "round trip changed language: {s} -> {}",
            back.to_text(&a)
        );
    }

    #[test]
    fn round_trips_preserve_language() {
        for s in [
            "[]",
            "~",
            "p",
            "p q",
            "p*",
            "(p q)* p",
            "(p | p p) p (p | p p)",
            "[^p]* p .*",
            "p* q p* q p*",
            "!(p* q)",
            "(q p)* ([^p]* - (.* q)) p .*",
        ] {
            round_trip(s);
        }
    }

    #[test]
    fn empty_language_prints_empty() {
        let a = ab();
        let d = Dfa::empty_lang(&a);
        assert_eq!(d.to_regex(), Regex::Empty);
    }

    #[test]
    fn universal_language_prints_compactly() {
        let a = ab();
        let d = Dfa::universal(&a);
        let r = d.to_regex();
        // Should be Σ* = `.*` after simplification.
        assert_eq!(r.to_text(&a), ".*");
    }

    #[test]
    fn output_is_reasonably_small_for_simple_languages() {
        let a = ab();
        let d = Dfa::from_regex(&a, &Regex::parse(&a, "[^p]* p .*").unwrap());
        let r = d.to_regex();
        assert!(r.size() < 20, "oversized output: {}", r.to_text(&a));
    }
}
