//! Hopcroft minimization and canonical numbering.
//!
//! Minimization proceeds in three steps:
//! 1. restrict to states reachable from the start,
//! 2. Hopcroft partition refinement,
//! 3. canonical renumbering by BFS from the start, visiting symbols in index
//!    order.
//!
//! Step 3 makes the minimal DFA *structurally canonical*: two DFAs denote
//! the same language iff their minimized forms are field-for-field equal.
//! [`Lang`](crate::lang::Lang) relies on this for cheap equality.

use super::{Dfa, StateId};
use std::collections::{HashMap, VecDeque};

impl Dfa {
    /// The canonical minimal DFA for this automaton's language.
    pub fn minimized(&self) -> Dfa {
        let reachable = self.reachable_states();
        let partition = hopcroft(self, &reachable);
        canonicalize(self, &partition)
    }

    /// Bit-vector of states reachable from the start.
    pub(crate) fn reachable_states(&self) -> Vec<bool> {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start()];
        seen[self.start() as usize] = true;
        while let Some(q) = stack.pop() {
            for sym in self.alphabet().symbols() {
                let t = self.next(q, sym);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    /// Structural equality of already-minimized automata. Only meaningful on
    /// the output of [`Dfa::minimized`].
    pub fn same_canonical(&self, other: &Dfa) -> bool {
        self.alphabet().compatible(other.alphabet())
            && self.start == other.start
            && self.accepting == other.accepting
            && self.table == other.table
    }

    /// Structural hash of the canonical form: two minimized DFAs satisfy
    /// `a.same_canonical(&b)` only if `a.canonical_hash() ==
    /// b.canonical_hash()`. The hash covers exactly the fields
    /// [`Dfa::same_canonical`] compares (alphabet names, start, accepting
    /// set, transition table), so the interner can bucket by hash and
    /// confirm with `same_canonical`. Only meaningful on the output of
    /// [`Dfa::minimized`].
    pub fn canonical_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.alphabet().len().hash(&mut h);
        for sym in self.alphabet().symbols() {
            self.alphabet().name(sym).hash(&mut h);
        }
        self.start.hash(&mut h);
        self.accepting.hash(&mut h);
        self.table.hash(&mut h);
        h.finish()
    }
}

/// Hopcroft's partition refinement over the reachable states, in the
/// textbook O(n·σ·log n) formulation: the partition is kept as a
/// permutation array with per-block `[start, end)` ranges so splits are
/// in-place swaps, and the worklist applies the classic replace rule —
/// if `(B, s)` is queued when `B` splits, both parts are queued (the
/// stale entry stands for the shrunk `B`, the new part is added);
/// otherwise only the *smaller* part is queued. `in_work[B·σ + s]` gives
/// the O(1) membership test the rule needs.
///
/// Returns each state's block id; unreachable states get `u32::MAX` and
/// are dropped by canonicalization.
fn hopcroft(dfa: &Dfa, reachable: &[bool]) -> Vec<u32> {
    let n = dfa.num_states();
    let sigma = dfa.alphabet().len();

    // Reverse transitions among reachable states, grouped by symbol:
    // rev[s][t] = sources q with δ(q, s) = t.
    let mut rev: Vec<Vec<Vec<StateId>>> = vec![vec![Vec::new(); n]; sigma];
    for q in 0..n as StateId {
        if !reachable[q as usize] {
            continue;
        }
        for sym in dfa.alphabet().symbols() {
            rev[sym.index()][dfa.next(q, sym) as usize].push(q);
        }
    }

    // Partition as a permutation of the reachable states.
    let mut elems: Vec<StateId> = Vec::new();
    let mut block_of: Vec<u32> = vec![u32::MAX; n];
    // Accepting first, then rejecting, so blocks are contiguous.
    for pass in 0..2 {
        for q in 0..n as StateId {
            if reachable[q as usize] && (dfa.is_accepting(q) == (pass == 0)) {
                block_of[q as usize] = pass;
                elems.push(q);
            }
        }
    }
    let num_acc = elems.iter().take_while(|&&q| dfa.is_accepting(q)).count();
    let mut loc: Vec<usize> = vec![usize::MAX; n];
    for (i, &q) in elems.iter().enumerate() {
        loc[q as usize] = i;
    }
    // Per-block ranges. Block 0 = accepting, block 1 = rejecting; either
    // may be empty (then it simply never matches any state id).
    let mut bstart: Vec<usize> = vec![0, num_acc];
    let mut bend: Vec<usize> = vec![num_acc, elems.len()];
    // Fix block ids when one side is empty: ids were assigned by `pass`.
    // (Empty blocks are harmless: no state carries their id.)
    let mut marked: Vec<usize> = vec![0, 0];
    let mut touched: Vec<u32> = Vec::new();

    // Worklist with O(1) membership.
    let mut work: VecDeque<(u32, usize)> = VecDeque::new();
    let mut in_work: Vec<bool> = Vec::new();
    let push_work =
        |b: u32, s: usize, work: &mut VecDeque<(u32, usize)>, in_work: &mut Vec<bool>| {
            let ix = b as usize * sigma + s;
            if !in_work[ix] {
                in_work[ix] = true;
                work.push_back((b, s));
            }
        };
    in_work.resize(2 * sigma, false);
    // Seed with the smaller initial block (both when equal-sized works
    // too, but smaller suffices for correctness).
    let seed = if num_acc <= elems.len() - num_acc {
        0
    } else {
        1
    };
    for s in 0..sigma {
        push_work(seed, s, &mut work, &mut in_work);
    }

    while let Some((splitter, sym)) = work.pop_front() {
        in_work[splitter as usize * sigma + sym] = false;
        // Materialize X = δ⁻¹(splitter, sym) at pop time.
        let mut x: Vec<StateId> = Vec::new();
        for i in bstart[splitter as usize]..bend[splitter as usize] {
            x.extend_from_slice(&rev[sym][elems[i] as usize]);
        }

        // Mark members of X by swapping them to the front of their block.
        for &q in &x {
            let b = block_of[q as usize];
            debug_assert_ne!(b, u32::MAX);
            let m = marked[b as usize];
            let qpos = loc[q as usize];
            let front = bstart[b as usize] + m;
            if qpos < front {
                continue; // already marked (duplicate in X is impossible,
                          // but stale marks are cleared below anyway)
            }
            if m == 0 {
                touched.push(b);
            }
            // Swap q with the element at `front`.
            let other = elems[front];
            elems[front] = q;
            elems[qpos] = other;
            loc[q as usize] = front;
            loc[other as usize] = qpos;
            marked[b as usize] = m + 1;
        }

        // Split every touched block whose mark is proper.
        for &b in &touched {
            let m = std::mem::take(&mut marked[b as usize]);
            let size = bend[b as usize] - bstart[b as usize];
            if m == size {
                continue; // whole block marked: no split
            }
            // New block = the marked prefix.
            let nb = bstart.len() as u32;
            bstart.push(bstart[b as usize]);
            bend.push(bstart[b as usize] + m);
            bstart[b as usize] += m;
            for i in bstart[nb as usize]..bend[nb as usize] {
                block_of[elems[i] as usize] = nb;
            }
            marked.push(0);
            in_work.extend(std::iter::repeat_n(false, sigma));
            // Replace rule.
            let nb_size = m;
            let b_size = size - m;
            for s in 0..sigma {
                // If (b, s) is still queued, the stale entry now stands
                // for the shrunk b, so the new part must also be queued;
                // otherwise queue whichever part is smaller. Both cases
                // queue `nb` when it is the smaller part, hence the
                // combined condition.
                if in_work[b as usize * sigma + s] || nb_size <= b_size {
                    push_work(nb, s, &mut work, &mut in_work);
                } else {
                    push_work(b, s, &mut work, &mut in_work);
                }
            }
        }
        touched.clear();
    }

    block_of
}

/// Rebuild the quotient automaton and renumber blocks in BFS discovery
/// order (symbols visited in index order) for canonical form.
fn canonicalize(dfa: &Dfa, block_of: &[u32]) -> Dfa {
    let sigma = dfa.alphabet().len();
    let start_block = block_of[dfa.start() as usize];
    debug_assert_ne!(start_block, u32::MAX);

    // Pick one representative per block (any member works: blocks are
    // transition-consistent).
    let mut rep: HashMap<u32, StateId> = HashMap::new();
    for (q, &b) in block_of.iter().enumerate() {
        if b != u32::MAX {
            rep.entry(b).or_insert(q as StateId);
        }
    }

    let mut new_id: HashMap<u32, StateId> = HashMap::new();
    let mut order: Vec<u32> = Vec::new();
    let mut queue = VecDeque::new();
    new_id.insert(start_block, 0);
    order.push(start_block);
    queue.push_back(start_block);
    while let Some(b) = queue.pop_front() {
        let r = rep[&b];
        for sym in dfa.alphabet().symbols() {
            let tb = block_of[dfa.next(r, sym) as usize];
            if let std::collections::hash_map::Entry::Vacant(e) = new_id.entry(tb) {
                e.insert(order.len() as StateId);
                order.push(tb);
                queue.push_back(tb);
            }
        }
    }

    let n = order.len();
    let mut table = vec![0 as StateId; n * sigma];
    let mut accepting = vec![false; n];
    for (i, &b) in order.iter().enumerate() {
        let r = rep[&b];
        accepting[i] = dfa.is_accepting(r);
        for sym in dfa.alphabet().symbols() {
            let tb = block_of[dfa.next(r, sym) as usize];
            table[i * sigma + sym.index()] = new_id[&tb];
        }
    }
    Dfa::from_parts(dfa.alphabet().clone(), table, accepting, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn min_dfa(s: &str) -> Dfa {
        let a = ab();
        Dfa::from_regex(&a, &Regex::parse(&a, s).unwrap())
    }

    #[test]
    fn sizes_of_known_minimal_dfas() {
        // Σ* : 1 state; ∅ : 1 state; "strings with even # of p" : 2 states.
        assert_eq!(min_dfa(".*").num_states(), 1);
        assert_eq!(min_dfa("[]").num_states(), 1);
        assert_eq!(min_dfa("(q* p q* p)* q*").num_states(), 2);
        // "ends in p": 2 states; "contains p": 2 states + nothing dead.
        assert_eq!(min_dfa(".* p").num_states(), 2);
        assert_eq!(min_dfa(".* p .*").num_states(), 2);
    }

    #[test]
    fn canonical_forms_are_equal_for_equivalent_regexes() {
        let pairs = [
            ("(p | q)*", ".*"),
            ("p p* ", "p+"),
            ("(p q)* p", "p (q p)*"),
            ("(p* q*)*", ".*"),
            ("p? p?", "p? p?"),
        ];
        for (x, y) in pairs {
            let dx = min_dfa(x);
            let dy = min_dfa(y);
            assert!(
                dx.same_canonical(&dy),
                "{x} and {y} should canonicalize identically"
            );
        }
    }

    #[test]
    fn canonical_forms_differ_for_different_languages() {
        let dx = min_dfa("p*");
        let dy = min_dfa("p+");
        assert!(!dx.same_canonical(&dy));
    }

    #[test]
    fn minimization_preserves_language() {
        let a = ab();
        for s in ["(p q)* p .*", "(p | p p) p (p | p p)", "p* q p*"] {
            let re = Regex::parse(&a, s).unwrap();
            let raw = super::super::determinize::determinize(&crate::nfa::Nfa::thompson(&a, &re));
            let min = raw.minimized();
            assert!(min.num_states() <= raw.num_states());
            // compare on all strings up to length 6
            fn all(a: &Alphabet, len: usize) -> Vec<Vec<crate::symbol::Symbol>> {
                let mut out = vec![vec![]];
                let mut layer = vec![vec![]];
                for _ in 0..len {
                    let mut next = Vec::new();
                    for w in &layer {
                        for s in a.symbols() {
                            let mut w2 = w.clone();
                            w2.push(s);
                            next.push(w2);
                        }
                    }
                    out.extend(next.iter().cloned());
                    layer = next;
                }
                out
            }
            for w in all(&a, 6) {
                assert_eq!(raw.accepts(&w), min.accepts(&w), "mismatch for {s}");
            }
        }
    }

    /// Regression: the original worklist maintenance (enqueue only the
    /// smaller split part) could miss refinements on wider alphabets,
    /// producing a minimized DFA accepting a *different* language. Found
    /// via the Section 7 pipeline: `(Σ−p)* − F₀` was wrongly accepting a
    /// member of `F₀`.
    #[test]
    fn minimization_preserves_language_on_wide_alphabet_difference() {
        let names = [
            "P", "H1", "/H1", "FORM", "/FORM", "INPUT", "BR", "TABLE", "/TABLE", "TR", "/TR", "TH",
            "/TH", "TD", "/TD", "IMG", "A", "/A",
        ];
        let a = Alphabet::new(names);
        let header = "((P H1 /H1 P) | (TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR TR TD))";
        let f0 = Dfa::from_regex(
            &a,
            &Regex::parse(&a, &format!("{header} FORM (TR TD)?")).unwrap(),
        );
        let not_p_star = Dfa::from_regex(&a, &Regex::parse(&a, "[^INPUT]*").unwrap());
        let raw = not_p_star.difference(&f0);
        let min = raw.minimized();
        let w = a.str_to_syms("P H1 /H1 P FORM TR TD").unwrap();
        assert!(!raw.accepts(&w));
        assert!(!min.accepts(&w), "minimization changed the language");
        // Full equivalence, not just the one witness.
        assert!(raw.symmetric_difference(&min).shortest_member().is_none());
    }

    /// Randomized soundness: minimized DFA equivalent to its input (checked
    /// via the product construction, which does not use Hopcroft).
    #[test]
    fn minimization_is_language_preserving_randomized() {
        let names: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
        let a = Alphabet::new(names);
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D)
        };
        for _ in 0..30 {
            // Random DFA: 12 states, random transitions/acceptance.
            let n = 12usize;
            let mut table = Vec::with_capacity(n * a.len());
            for _ in 0..n * a.len() {
                table.push((next() % n as u64) as u32);
            }
            let accepting: Vec<bool> = (0..n).map(|_| next() % 2 == 0).collect();
            let d = Dfa::from_parts(a.clone(), table, accepting, 0);
            let m = d.minimized();
            assert!(
                d.symmetric_difference(&m).shortest_member().is_none(),
                "minimization changed a random DFA's language"
            );
        }
    }

    #[test]
    fn unreachable_states_are_dropped() {
        let a = ab();
        // Hand-build a DFA with an unreachable accepting state.
        // states: 0 start (rejecting), 1 unreachable accepting.
        let table = vec![0, 0, 1, 1]; // 0 -p->0, 0 -q->0, 1 -> 1,1
        let d = Dfa::from_parts(a.clone(), table, vec![false, true], 0);
        let m = d.minimized();
        assert_eq!(m.num_states(), 1);
        assert!(!m.accepts(&[]));
    }
}
