//! Graphviz DOT export for DFAs.
//!
//! Debugging aid: `dot -Tpng <(your-program)` renders the automaton.
//! Transitions to the same target are grouped into one edge labeled with
//! a symbol-class; the dead sink (single non-accepting state with all
//! self-loops, if present and non-start) is omitted by default to keep
//! diagrams readable.

use super::{Dfa, StateId};
use std::fmt::Write as _;

impl Dfa {
    /// Render as a Graphviz `digraph`. `show_sink` includes dead states.
    pub fn to_dot(&self, show_sink: bool) -> String {
        let useful = self.useful_states();
        let visible = |q: StateId| show_sink || useful[q as usize] || q == self.start();
        let mut out = String::from("digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n");
        let _ = writeln!(out, "  __start [shape=point];");
        let _ = writeln!(out, "  __start -> s{};", self.start());
        for q in 0..self.num_states() as StateId {
            if !visible(q) {
                continue;
            }
            let shape = if self.is_accepting(q) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  s{q} [shape={shape}];");
            // Group outgoing edges by target.
            let mut by_target: std::collections::BTreeMap<StateId, Vec<&str>> =
                std::collections::BTreeMap::new();
            for sym in self.alphabet().symbols() {
                let t = self.next(q, sym);
                if visible(t) {
                    by_target
                        .entry(t)
                        .or_default()
                        .push(self.alphabet().name(sym));
                }
            }
            for (t, names) in by_target {
                let label = if names.len() == self.alphabet().len() {
                    "Σ".to_string()
                } else {
                    names.join(",")
                };
                let _ = writeln!(out, "  s{q} -> s{t} [label=\"{label}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;

    #[test]
    fn dot_output_has_expected_structure() {
        let a = Alphabet::new(["p", "q"]);
        let d = Dfa::from_regex(&a, &Regex::parse(&a, "[^p]* p").unwrap());
        let dot = d.to_dot(false);
        assert!(dot.starts_with("digraph dfa {"));
        assert!(dot.contains("__start ->"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.ends_with("}\n"));
        // Dead sink hidden by default, shown on request.
        let with_sink = d.to_dot(true);
        assert!(with_sink.len() >= dot.len());
    }

    #[test]
    fn full_alphabet_edges_collapse_to_sigma() {
        let a = Alphabet::new(["p", "q", "r"]);
        let d = Dfa::universal(&a);
        let dot = d.to_dot(true);
        assert!(dot.contains("label=\"Σ\""), "{dot}");
    }
}
