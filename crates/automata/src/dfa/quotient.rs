//! Prefix and suffix factoring — Definition 5.1 of the paper.
//!
//! * **Suffix factorization** (right quotient)
//!   `E1 / E2 = { α | ∃β ∈ L(E2), α·β ∈ L(E1) }`
//! * **Prefix factorization** (left quotient)
//!   `E2 \ E1 = { α | ∃β ∈ L(E2), β·α ∈ L(E1) }`
//!
//! Both are regular (the paper cites Conway) and computable in polynomial
//! time (Lemma 5.2). We realize them with a single product-graph
//! reachability pass each:
//!
//! * right quotient keeps the structure of `D1` and re-marks state `q` as
//!   accepting iff, in the product `D1 × D2` started at `(q, start₂)`, some
//!   jointly accepting pair is reachable;
//! * left quotient collects the set `S = { δ₁(start₁, β) | β ∈ L(E2) }` via
//!   forward product reachability and reinterprets `D1` as an NFA with start
//!   set `S`.

use super::{Dfa, StateId};
use crate::nfa::Nfa;
use std::collections::VecDeque;

impl Dfa {
    /// Right quotient `self / by` (the paper's suffix factorization
    /// `E1 / E2`): strings `α` such that `α·β ∈ L(self)` for some
    /// `β ∈ L(by)`. Result has the same state structure as `self`.
    pub fn right_quotient(&self, by: &Dfa) -> Dfa {
        assert!(
            self.alphabet().compatible(by.alphabet()),
            "quotient over incompatible alphabets"
        );
        let n1 = self.num_states();
        let n2 = by.num_states();
        let sigma = self.alphabet().len();
        let pid = |q1: StateId, q2: StateId| q1 as usize * n2 + q2 as usize;

        // Backward reachability to jointly accepting pairs over the FULL
        // product graph (we must answer "can (q, start₂) reach accept?" for
        // every q, not just pairs reachable from the joint start).
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n1 * n2];
        let mut good = vec![false; n1 * n2];
        let mut queue: VecDeque<u32> = VecDeque::new();
        for q1 in 0..n1 as StateId {
            for q2 in 0..n2 as StateId {
                let from = pid(q1, q2);
                for sym in self.alphabet().symbols() {
                    let to = pid(self.next(q1, sym), by.next(q2, sym));
                    rev[to].push(from as u32);
                }
                if self.is_accepting(q1) && by.is_accepting(q2) {
                    good[from] = true;
                    queue.push_back(from as u32);
                }
            }
        }
        // `sigma == 0` still works: no edges, only the ε case below matters.
        let _ = sigma;
        while let Some(s) = queue.pop_front() {
            // Clone-free walk over predecessors.
            let preds = std::mem::take(&mut rev[s as usize]);
            for p in preds {
                if !good[p as usize] {
                    good[p as usize] = true;
                    queue.push_back(p);
                }
            }
        }

        let accepting = (0..n1 as StateId)
            .map(|q| good[pid(q, by.start())])
            .collect();
        self.with_accepting(accepting)
    }

    /// Left quotient `by \ self` (the paper's prefix factorization
    /// `E2 \ E1` with `self = E1`, `by = E2`): strings `α` such that
    /// `β·α ∈ L(self)` for some `β ∈ L(by)`.
    pub fn left_quotient(&self, by: &Dfa) -> Dfa {
        assert!(
            self.alphabet().compatible(by.alphabet()),
            "quotient over incompatible alphabets"
        );
        let n2 = by.num_states();
        let pid = |q1: StateId, q2: StateId| q1 as usize * n2 + q2 as usize;

        // Forward product reachability from the joint start.
        let mut seen = vec![false; self.num_states() * n2];
        let mut stack = vec![(self.start(), by.start())];
        seen[pid(self.start(), by.start())] = true;
        let mut starts: Vec<StateId> = Vec::new();
        let mut start_marked = vec![false; self.num_states()];
        while let Some((q1, q2)) = stack.pop() {
            if by.is_accepting(q2) && !start_marked[q1 as usize] {
                start_marked[q1 as usize] = true;
                starts.push(q1);
            }
            for sym in self.alphabet().symbols() {
                let t = (self.next(q1, sym), by.next(q2, sym));
                if !seen[pid(t.0, t.1)] {
                    seen[pid(t.0, t.1)] = true;
                    stack.push(t);
                }
            }
        }

        if starts.is_empty() {
            return Dfa::empty_lang(self.alphabet());
        }
        let nfa = Nfa::from_dfa(self).with_starts(starts);
        super::determinize::determinize(&nfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::regex::Regex;
    use crate::symbol::Symbol;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn d(s: &str) -> Dfa {
        let a = ab();
        Dfa::from_regex(&a, &Regex::parse(&a, s).unwrap())
    }

    fn all_strings(a: &Alphabet, max_len: usize) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = vec![vec![]];
        let mut layer: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for w in &layer {
                for s in a.symbols() {
                    let mut w2 = w.clone();
                    w2.push(s);
                    next.push(w2);
                }
            }
            out.extend(next.iter().cloned());
            layer = next;
        }
        out
    }

    /// Brute-force right quotient membership: α ∈ L1/L2 iff ∃β (|β| ≤ k):
    /// α·β ∈ L1 ∧ β ∈ L2. Sound for our small test languages with k = 6.
    fn brute_right(l1: &Dfa, l2: &Dfa, alpha: &[Symbol], k: usize) -> bool {
        all_strings(l1.alphabet(), k).into_iter().any(|beta| {
            if !l2.accepts(&beta) {
                return false;
            }
            let mut w = alpha.to_vec();
            w.extend_from_slice(&beta);
            l1.accepts(&w)
        })
    }

    fn brute_left(l1: &Dfa, l2: &Dfa, alpha: &[Symbol], k: usize) -> bool {
        all_strings(l1.alphabet(), k).into_iter().any(|beta| {
            if !l2.accepts(&beta) {
                return false;
            }
            let mut w = beta.clone();
            w.extend_from_slice(alpha);
            l1.accepts(&w)
        })
    }

    #[test]
    fn right_quotient_matches_brute_force() {
        let a = ab();
        let cases = [
            ("(p q)* p", "p"),
            ("p* q p*", "p*"),
            ("(p | p p) p", "p"),
            ("[^p]* p .*", "p .*"),
            ("p q p q", "q"),
        ];
        for (l1s, l2s) in cases {
            let l1 = d(l1s);
            let l2 = d(l2s);
            let quot = l1.right_quotient(&l2);
            for w in all_strings(&a, 5) {
                assert_eq!(
                    quot.accepts(&w),
                    brute_right(&l1, &l2, &w, 6),
                    "mismatch for ({l1s})/({l2s}) on {:?}",
                    a.syms_to_str(&w)
                );
            }
        }
    }

    #[test]
    fn left_quotient_matches_brute_force() {
        let a = ab();
        let cases = [
            ("(p q)* p", "p q"),
            ("p* q p*", "p+"),
            ("p q p q", "p q"),
            ("[^p]* p .*", "[^p]*"),
        ];
        for (l1s, l2s) in cases {
            let l1 = d(l1s);
            let l2 = d(l2s);
            let quot = l1.left_quotient(&l2);
            for w in all_strings(&a, 5) {
                assert_eq!(
                    quot.accepts(&w),
                    brute_left(&l1, &l2, &w, 6),
                    "mismatch for ({l2s})\\({l1s}) on {:?}",
                    a.syms_to_str(&w)
                );
            }
        }
    }

    #[test]
    fn quotient_by_empty_language_is_empty() {
        let l1 = d("(p q)*");
        let empty = d("[]");
        assert!(l1
            .right_quotient(&empty)
            .minimized()
            .same_canonical(&d("[]")));
        assert!(l1
            .left_quotient(&empty)
            .minimized()
            .same_canonical(&d("[]")));
    }

    #[test]
    fn quotient_by_epsilon_is_identity() {
        let l1 = d("(p q)* p");
        let eps = d("~");
        assert!(l1
            .right_quotient(&eps)
            .minimized()
            .same_canonical(&l1.minimized()));
        assert!(l1
            .left_quotient(&eps)
            .minimized()
            .same_canonical(&l1.minimized()));
    }

    #[test]
    fn paper_example_prefixes_before_p() {
        // For E = (q p)* and marker p: E / (p·Σ*) = prefixes of E-strings
        // that are immediately followed by p = (q p)* q.
        let a = ab();
        let e = d("(q p)*");
        let p_sigma = d("p .*");
        let quot = e.right_quotient(&p_sigma).minimized();
        let expect = d("(q p)* q").minimized();
        assert!(
            quot.same_canonical(&expect),
            "got {}",
            quot.to_regex().to_text(&a)
        );
    }
}
