//! # rextract-automata
//!
//! A self-contained toolkit for regular languages over **explicit finite
//! alphabets**, built as the substrate for the PODS 2000 paper
//! *"Computational Aspects of Resilient Data Extraction from Semistructured
//! Sources"* (Davulcu, Yang, Kifer, Ramakrishnan).
//!
//! The paper manipulates regular languages in ways general-purpose regex
//! engines do not support:
//!
//! * **complement and difference** relative to a finite alphabet `Σ`
//!   (expressions such as `(Σ − p)*`),
//! * **prefix/suffix factoring** (left and right quotients, Definition 5.1),
//! * **universality** tests (`L = Σ*`, Lemma 5.9) used by the maximality
//!   characterization (Corollary 5.8),
//! * **bounded-marker analysis** (`E‖ⁿ_p = ∅` for some `n`, the precondition
//!   of the left-filtering maximization algorithm 6.2).
//!
//! This crate therefore provides, from scratch:
//!
//! * interned [`Symbol`]s and shared [`Alphabet`]s ([`symbol`], [`alphabet`]),
//! * a regular-expression AST with extended operators (intersection,
//!   complement, difference) plus a parser, printer and simplifier
//!   ([`regex`]),
//! * Thompson-construction NFAs ([`nfa`]),
//! * complete deterministic automata with subset construction, Hopcroft
//!   minimization, boolean products, reversal, quotients, decision
//!   procedures, and DFA→regex state elimination ([`dfa`]),
//! * an interned language store hash-consing canonical minimal DFAs with
//!   a memoized operation cache ([`intern`], [`store`]),
//! * a high-level [`lang::Lang`] facade — a cheap interned handle whose
//!   algebra routes through the store ([`lang`]),
//! * bounded enumeration and random sampling of language members
//!   ([`sample`]).
//!
//! ## Quick tour
//!
//! ```
//! use rextract_automata::prelude::*;
//!
//! let ab = Alphabet::new(["p", "q"]);
//!
//! // (Σ - p)* p Σ*   — "everything before the first p, then anything".
//! let re = Regex::parse(&ab, "[^p]* p .*").unwrap();
//! let lang = Lang::from_regex(&ab, &re);
//!
//! assert!(lang.contains(&ab.str_to_syms("q q p q").unwrap()));
//! assert!(!lang.contains(&ab.str_to_syms("q q").unwrap()));
//!
//! // Universality and complement relative to Σ:
//! let everything = lang.union(&lang.complement());
//! assert!(everything.is_universal());
//! ```

pub mod alphabet;
pub mod dfa;
mod fxhash;
pub mod intern;
pub mod lang;
pub mod nfa;
pub mod regex;
pub mod sample;
pub mod store;
pub mod symbol;

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use crate::alphabet::{Alphabet, SymbolSet};
    pub use crate::dfa::Dfa;
    pub use crate::intern::LangId;
    pub use crate::lang::Lang;
    pub use crate::nfa::Nfa;
    pub use crate::regex::Regex;
    pub use crate::store::{ShardStats, Store, StoreStats};
    pub use crate::symbol::Symbol;
}

pub use alphabet::{Alphabet, SymbolSet};
pub use dfa::classify::DenseClassifier;
pub use dfa::Dfa;
pub use intern::LangId;
pub use lang::Lang;
pub use nfa::Nfa;
pub use regex::Regex;
pub use store::{ShardStats, Store, StoreStats};
pub use symbol::Symbol;
