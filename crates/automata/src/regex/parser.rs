//! Text syntax for regular expressions.
//!
//! The syntax mirrors the paper's notation as closely as ASCII allows:
//!
//! | Syntax            | Meaning                                        |
//! |-------------------|------------------------------------------------|
//! | `FORM`, `p`       | a symbol (identifier, looked up in the alphabet) |
//! | `~`               | `ε`                                            |
//! | `[]`              | `∅` (the empty class is the empty language)    |
//! | `.`               | any single symbol (`Σ` as a class)             |
//! | `[a b c]`         | symbol class                                   |
//! | `[^a b]`          | complemented symbol class (`Σ − {a,b}`)        |
//! | juxtaposition     | concatenation                                  |
//! | `e*` `e+` `e?`    | star / plus / option                           |
//! | `e1 & e2`         | intersection                                   |
//! | `e1 - e2`         | difference (the paper's `E1 − E2`)             |
//! | `!e`              | complement relative to `Σ*`                    |
//! | `e1 | e2`         | union                                          |
//! | `( … )`           | grouping                                       |
//!
//! Precedence, loosest to tightest: `|`, then `-`/`&` (left-associative,
//! equal precedence), then concatenation, then postfix `*`/`+`/`?`, then
//! `!` and atoms.
//!
//! Identifiers may contain letters, digits, `_`, `/`, `:` and `#` — enough
//! for HTML close tags like `/TD`. They must be separated by whitespace or
//! operators.

use super::Regex;
use crate::alphabet::Alphabet;
use std::fmt;

/// Error produced by [`Regex::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Regex {
    /// Parse the textual syntax described in the [module docs](self).
    /// Symbol identifiers are resolved against `alphabet`; unknown symbols
    /// are an error.
    pub fn parse(alphabet: &Alphabet, input: &str) -> Result<Regex, ParseError> {
        let mut p = Parser {
            alphabet,
            toks: lex(input)?,
            pos: 0,
        };
        let re = p.parse_alt()?;
        if p.pos < p.toks.len() {
            return Err(p.err_here("unexpected trailing input"));
        }
        Ok(re)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Caret,
    Star,
    PlusOp,
    Quest,
    Pipe,
    Amp,
    Minus,
    Bang,
    Dot,
    Tilde,
}

struct Spanned {
    tok: Tok,
    offset: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let simple = match c {
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            '[' => Some(Tok::LBracket),
            ']' => Some(Tok::RBracket),
            '^' => Some(Tok::Caret),
            '*' => Some(Tok::Star),
            '+' => Some(Tok::PlusOp),
            '?' => Some(Tok::Quest),
            '|' => Some(Tok::Pipe),
            '&' => Some(Tok::Amp),
            '-' => Some(Tok::Minus),
            '!' => Some(Tok::Bang),
            '.' => Some(Tok::Dot),
            '~' => Some(Tok::Tilde),
            _ => None,
        };
        if let Some(tok) = simple {
            out.push(Spanned { tok, offset: i });
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if is_ident_char(c) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            out.push(Spanned {
                tok: Tok::Ident(input[start..i].to_string()),
                offset: start,
            });
        } else {
            return Err(ParseError {
                offset: i,
                message: format!("unexpected character {c:?}"),
            });
        }
    }
    Ok(out)
}

fn is_ident_char(c: char) -> bool {
    // `@` and `=` admit the attribute-refined tag symbols of
    // `rextract-html` (`INPUT@type=text`) as identifiers.
    c.is_alphanumeric() || matches!(c, '_' | '/' | ':' | '#' | '@' | '=')
}

struct Parser<'a> {
    alphabet: &'a Alphabet,
    toks: Vec<Spanned>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: &str) -> ParseError {
        let offset = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.offset)
            .unwrap_or(0);
        ParseError {
            offset,
            message: msg.to_string(),
        }
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_diff_and()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.bump();
            parts.push(self.parse_diff_and()?);
        }
        Ok(Regex::alt(parts))
    }

    fn parse_diff_and(&mut self) -> Result<Regex, ParseError> {
        let mut acc = self.parse_concat()?;
        loop {
            match self.peek() {
                Some(Tok::Minus) => {
                    self.bump();
                    let rhs = self.parse_concat()?;
                    acc = acc.diff(rhs);
                }
                Some(Tok::Amp) => {
                    self.bump();
                    let rhs = self.parse_concat()?;
                    acc = Regex::and([acc, rhs]);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = Vec::new();
        while self.starts_atom() {
            parts.push(self.parse_postfix()?);
        }
        if parts.is_empty() {
            return Err(self.err_here("expected an expression"));
        }
        Ok(Regex::concat(parts))
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Ident(_) | Tok::LParen | Tok::LBracket | Tok::Dot | Tok::Tilde | Tok::Bang)
        )
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.bump();
                    r = r.star();
                }
                Some(Tok::PlusOp) => {
                    self.bump();
                    r = r.plus();
                }
                Some(Tok::Quest) => {
                    self.bump();
                    r = r.opt();
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => {
                let s = self.alphabet.try_sym(&name).ok_or_else(|| ParseError {
                    offset: self.toks[self.pos - 1].offset,
                    message: format!("unknown symbol {name:?}"),
                })?;
                Ok(Regex::sym(self.alphabet, s))
            }
            Some(Tok::Dot) => Ok(Regex::any(self.alphabet)),
            Some(Tok::Tilde) => Ok(Regex::Epsilon),
            Some(Tok::Bang) => {
                let inner = self.parse_postfix()?;
                Ok(inner.not())
            }
            Some(Tok::LParen) => {
                let inner = self.parse_alt()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err_here("expected ')'")),
                }
            }
            Some(Tok::LBracket) => self.parse_class(),
            _ => Err(self.err_here("expected an expression")),
        }
    }

    fn parse_class(&mut self) -> Result<Regex, ParseError> {
        let negated = if self.peek() == Some(&Tok::Caret) {
            self.bump();
            true
        } else {
            false
        };
        let mut set = self.alphabet.empty_set();
        loop {
            match self.bump() {
                Some(Tok::Ident(name)) => {
                    let s = self.alphabet.try_sym(&name).ok_or_else(|| ParseError {
                        offset: self.toks[self.pos - 1].offset,
                        message: format!("unknown symbol {name:?}"),
                    })?;
                    set.insert(s);
                }
                Some(Tok::RBracket) => break,
                _ => return Err(self.err_here("expected a symbol or ']' in class")),
            }
        }
        if negated {
            set = set.complement();
        }
        Ok(Regex::class(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q", "r"])
    }

    fn p(s: &str) -> Regex {
        Regex::parse(&ab(), s).unwrap()
    }

    #[test]
    fn atoms() {
        let a = ab();
        assert_eq!(p("p"), Regex::sym(&a, a.sym("p")));
        assert_eq!(p("~"), Regex::Epsilon);
        assert_eq!(p("[]"), Regex::Empty);
        assert_eq!(p("."), Regex::any(&a));
        assert_eq!(
            p("[p q]"),
            Regex::class({
                let mut s = a.empty_set();
                s.insert(a.sym("p"));
                s.insert(a.sym("q"));
                s
            })
        );
        assert_eq!(p("[^p]"), Regex::not_sym(&a, a.sym("p")));
    }

    #[test]
    fn concatenation_and_postfix() {
        let a = ab();
        let sp = Regex::sym(&a, a.sym("p"));
        let sq = Regex::sym(&a, a.sym("q"));
        assert_eq!(p("p q"), Regex::concat([sp.clone(), sq.clone()]));
        assert_eq!(p("p*"), sp.clone().star());
        assert_eq!(
            p("p+ q?"),
            Regex::concat([sp.clone().plus(), sq.clone().opt()])
        );
        assert_eq!(p("(p q)*"), Regex::concat([sp, sq]).star());
    }

    #[test]
    fn alternation_precedence() {
        let a = ab();
        let sp = Regex::sym(&a, a.sym("p"));
        let sq = Regex::sym(&a, a.sym("q"));
        let sr = Regex::sym(&a, a.sym("r"));
        // p q | r parses as (p q) | r
        assert_eq!(
            p("p q | r"),
            Regex::alt([Regex::concat([sp.clone(), sq.clone()]), sr.clone()])
        );
        // p | q r* parses as p | (q r*)
        assert_eq!(
            p("p | q r*"),
            Regex::alt([sp, Regex::concat([sq, sr.star()])])
        );
    }

    #[test]
    fn extended_operators() {
        let a = ab();
        let sp = Regex::sym(&a, a.sym("p"));
        let sq = Regex::sym(&a, a.sym("q"));
        assert_eq!(p("p & q"), Regex::and([sp.clone(), sq.clone()]));
        assert_eq!(p("p - q"), sp.clone().diff(sq.clone()));
        assert_eq!(p("!p"), sp.clone().not());
        // `-` binds looser than concat: p q - q == (p q) - q
        assert_eq!(
            p("p q - q"),
            Regex::concat([sp.clone(), sq.clone()]).diff(sq.clone())
        );
        // and looser than postfix: !p* == !(p*)
        assert_eq!(p("!p*"), sp.star().not());
        let _ = sq;
    }

    #[test]
    fn paper_expressions_parse() {
        // Expressions from Examples 4.3 and 4.6 of the paper.
        for s in [
            "(p q)* p .*",
            "(p | p p) p (p | p p)",
            "[^p]* p .*",
            "(q p)* ([^p]* - (. * q)) p .*",
            "p* q",
        ] {
            assert!(Regex::parse(&ab(), s).is_ok(), "failed to parse {s}");
        }
    }

    #[test]
    fn errors() {
        let a = ab();
        assert!(Regex::parse(&a, "z").is_err());
        assert!(Regex::parse(&a, "(p").is_err());
        assert!(Regex::parse(&a, "p )").is_err());
        assert!(Regex::parse(&a, "[p").is_err());
        assert!(Regex::parse(&a, "|").is_err());
        assert!(Regex::parse(&a, "p $ q").is_err());
        let e = Regex::parse(&a, "p z").unwrap_err();
        assert!(e.message.contains("unknown symbol"));
        assert_eq!(e.offset, 2);
    }

    #[test]
    fn whitespace_is_flexible() {
        assert_eq!(p("p   q"), p("p q"));
        assert_eq!(p(" ( p | q ) * "), p("(p|q)*"));
    }

    #[test]
    fn html_like_identifiers() {
        let a = Alphabet::new(["FORM", "/FORM", "INPUT"]);
        let r = Regex::parse(&a, "FORM INPUT* /FORM").unwrap();
        assert_eq!(
            r,
            Regex::concat([
                Regex::sym(&a, a.sym("FORM")),
                Regex::sym(&a, a.sym("INPUT")).star(),
                Regex::sym(&a, a.sym("/FORM")),
            ])
        );
    }
}
