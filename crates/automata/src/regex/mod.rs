//! Regular expressions over a finite alphabet.
//!
//! The AST supports the classical operators (union, concatenation, Kleene
//! star/plus, option) **and** the extended operators the paper uses freely:
//! intersection (`&`), complement (`!`, relative to `Σ*`) and difference
//! (`E1 - E2`, Section 4: "the regular expression that recognizes
//! `L(E1) − L(E2)`"). Extended operators are compiled via automata products;
//! see [`crate::dfa`].
//!
//! Submodules:
//! * [`parser`] — a small text syntax used by tests, examples and docs,
//! * [`display`] — pretty-printing with minimal parentheses (inverse of the
//!   parser),
//! * [`simplify`] — algebraic simplification, mainly to keep the regexes
//!   produced by DFA state elimination readable,
//! * [`props`] — cheap structural properties (size, nullability, symbol
//!   usage).

pub mod derivative;
pub mod display;
pub mod parser;
pub mod props;
pub mod simplify;

use crate::alphabet::{Alphabet, SymbolSet};
use crate::symbol::Symbol;

pub use parser::ParseError;

/// A regular expression. See the [module docs](self) for the operator set.
///
/// Invariants maintained by the constructors (and assumed by consumers):
/// `Concat`/`Alt`/`And` vectors are flattened (no directly nested node of the
/// same kind) and never have fewer than two elements.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// `∅` — the empty language.
    Empty,
    /// `ε` — the language containing only the empty string.
    Epsilon,
    /// A single-symbol class: matches any one symbol in the set. A singleton
    /// class is an ordinary alphabet symbol; `Class(∅)` is equivalent to
    /// `Empty` (the constructors normalize it away).
    Class(SymbolSet),
    /// Concatenation `r1 · r2 · … · rn`.
    Concat(Vec<Regex>),
    /// Union `r1 | r2 | … | rn`.
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// Kleene plus `r+` (kept distinct from `r·r*` for readability).
    Plus(Box<Regex>),
    /// Option `r?`.
    Opt(Box<Regex>),
    /// Intersection `r1 & r2 & … & rn` (extended operator).
    And(Vec<Regex>),
    /// Complement `!r` relative to `Σ*` (extended operator).
    Not(Box<Regex>),
    /// Difference `r1 - r2` (extended operator).
    Diff(Box<Regex>, Box<Regex>),
}

impl Regex {
    /// A single symbol.
    pub fn sym(alphabet: &Alphabet, s: Symbol) -> Regex {
        Regex::Class(alphabet.singleton(s))
    }

    /// A character class; normalizes the empty class to `Empty`.
    pub fn class(set: SymbolSet) -> Regex {
        if set.is_empty() {
            Regex::Empty
        } else {
            Regex::Class(set)
        }
    }

    /// Any single symbol: the class `Σ`.
    pub fn any(alphabet: &Alphabet) -> Regex {
        Regex::class(alphabet.full_set())
    }

    /// Any single symbol except `s`: the paper's `Σ − s` (as a one-symbol
    /// class; the paper's `(Σ−p)*` is `Regex::not_sym(..).star()`).
    pub fn not_sym(alphabet: &Alphabet, s: Symbol) -> Regex {
        Regex::class(alphabet.without(s))
    }

    /// `Σ*` — every string.
    pub fn universe(alphabet: &Alphabet) -> Regex {
        Regex::any(alphabet).star()
    }

    /// Concatenation with flattening and unit/zero normalization.
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Union with flattening, `∅` elimination and duplicate removal.
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        let push = |r: Regex, out: &mut Vec<Regex>| {
            if !out.contains(&r) {
                out.push(r);
            }
        };
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for i in inner {
                        push(i, &mut out);
                    }
                }
                other => push(other, &mut out),
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Intersection with flattening.
    pub fn and(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => panic!(
                "intersection of zero regexes is Σ*, which needs an alphabet; use Regex::universe"
            ),
            1 => out.pop().expect("len checked"),
            _ => Regex::And(out),
        }
    }

    /// Kleene star, normalizing `∅* = ε* = ε` and `(r*)* = r*`.
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(r) | Regex::Opt(r) => Regex::Star(r),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Kleene plus, normalizing degenerate operands.
    pub fn plus(self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            p @ Regex::Plus(_) => p,
            Regex::Opt(r) => Regex::Star(r),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Option, normalizing degenerate operands.
    pub fn opt(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(r) => Regex::Star(r),
            o @ Regex::Opt(_) => o,
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// Complement relative to `Σ*`, normalizing double negation.
    /// (Named `not` to match the `!` surface syntax; this is a by-value
    /// builder like `star`/`plus`, not an `ops::Not` impl.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Regex {
        match self {
            Regex::Not(r) => *r,
            other => Regex::Not(Box::new(other)),
        }
    }

    /// Difference `self − other`.
    pub fn diff(self, other: Regex) -> Regex {
        match (&self, &other) {
            (Regex::Empty, _) => Regex::Empty,
            (_, Regex::Empty) => self,
            _ => Regex::Diff(Box::new(self), Box::new(other)),
        }
    }

    /// `self` repeated exactly `n` times.
    pub fn repeat(&self, n: usize) -> Regex {
        Regex::concat(std::iter::repeat_n(self.clone(), n))
    }

    /// Build a regex matching exactly the given symbol string.
    pub fn literal(alphabet: &Alphabet, syms: &[Symbol]) -> Regex {
        Regex::concat(syms.iter().map(|&s| Regex::sym(alphabet, s)))
    }

    /// True if this node uses an extended operator (`And`/`Not`/`Diff`)
    /// anywhere, i.e. cannot be compiled by pure Thompson construction.
    pub fn has_extended_ops(&self) -> bool {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Class(_) => false,
            Regex::Concat(v) | Regex::Alt(v) => v.iter().any(Regex::has_extended_ops),
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) => r.has_extended_ops(),
            Regex::And(_) | Regex::Not(_) | Regex::Diff(_, _) => true,
        }
    }
}

impl std::fmt::Debug for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Debug prints the structural form; Display (in `display`) prints the
        // surface syntax and needs an alphabet for symbol names.
        match self {
            Regex::Empty => write!(f, "Empty"),
            Regex::Epsilon => write!(f, "Epsilon"),
            Regex::Class(s) => write!(f, "Class{s:?}"),
            Regex::Concat(v) => f.debug_tuple("Concat").field(v).finish(),
            Regex::Alt(v) => f.debug_tuple("Alt").field(v).finish(),
            Regex::Star(r) => f.debug_tuple("Star").field(r).finish(),
            Regex::Plus(r) => f.debug_tuple("Plus").field(r).finish(),
            Regex::Opt(r) => f.debug_tuple("Opt").field(r).finish(),
            Regex::And(v) => f.debug_tuple("And").field(v).finish(),
            Regex::Not(r) => f.debug_tuple("Not").field(r).finish(),
            Regex::Diff(a, b) => f.debug_tuple("Diff").field(a).field(b).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    #[test]
    fn concat_normalizes() {
        let a = ab();
        let p = Regex::sym(&a, a.sym("p"));
        let q = Regex::sym(&a, a.sym("q"));
        assert_eq!(
            Regex::concat([p.clone(), Regex::Epsilon, q.clone()]),
            Regex::Concat(vec![p.clone(), q.clone()])
        );
        assert_eq!(Regex::concat([p.clone(), Regex::Empty]), Regex::Empty);
        assert_eq!(Regex::concat([] as [Regex; 0]), Regex::Epsilon);
        assert_eq!(Regex::concat([p.clone()]), p.clone());
        // flattening
        let nested = Regex::concat([Regex::concat([p.clone(), q.clone()]), p.clone()]);
        assert_eq!(nested, Regex::Concat(vec![p.clone(), q.clone(), p]));
    }

    #[test]
    fn alt_normalizes() {
        let a = ab();
        let p = Regex::sym(&a, a.sym("p"));
        let q = Regex::sym(&a, a.sym("q"));
        assert_eq!(Regex::alt([Regex::Empty, p.clone()]), p.clone());
        assert_eq!(Regex::alt([] as [Regex; 0]), Regex::Empty);
        assert_eq!(Regex::alt([p.clone(), p.clone()]), p.clone());
        let nested = Regex::alt([Regex::alt([p.clone(), q.clone()]), q.clone()]);
        assert_eq!(nested, Regex::Alt(vec![p, q]));
    }

    #[test]
    fn star_normalizes() {
        let a = ab();
        let p = Regex::sym(&a, a.sym("p"));
        assert_eq!(Regex::Empty.star(), Regex::Epsilon);
        assert_eq!(Regex::Epsilon.star(), Regex::Epsilon);
        assert_eq!(p.clone().star().star(), p.clone().star());
        assert_eq!(p.clone().plus().star(), p.clone().star());
        assert_eq!(p.clone().opt().star(), p.star());
    }

    #[test]
    fn plus_opt_not_normalize() {
        let a = ab();
        let p = Regex::sym(&a, a.sym("p"));
        assert_eq!(Regex::Empty.plus(), Regex::Empty);
        assert_eq!(Regex::Epsilon.opt(), Regex::Epsilon);
        assert_eq!(p.clone().star().opt(), p.clone().star());
        assert_eq!(p.clone().not().not(), p.clone());
        assert_eq!(p.clone().opt().plus(), p.star());
    }

    #[test]
    fn empty_class_is_empty() {
        let a = ab();
        assert_eq!(Regex::class(a.empty_set()), Regex::Empty);
    }

    #[test]
    fn extended_op_detection() {
        let a = ab();
        let p = Regex::sym(&a, a.sym("p"));
        assert!(!p.clone().star().has_extended_ops());
        assert!(p.clone().not().has_extended_ops());
        assert!(Regex::concat([p.clone(), p.clone().not()]).has_extended_ops());
        assert!(p.clone().diff(p).has_extended_ops());
    }

    #[test]
    fn repeat_builds_powers() {
        let a = ab();
        let p = Regex::sym(&a, a.sym("p"));
        assert_eq!(p.repeat(0), Regex::Epsilon);
        assert_eq!(p.repeat(1), p);
        assert_eq!(
            p.repeat(3),
            Regex::Concat(vec![p.clone(), p.clone(), p.clone()])
        );
    }

    #[test]
    fn literal_builds_string() {
        let a = ab();
        let syms = a.str_to_syms("p q p").unwrap();
        let r = Regex::literal(&a, &syms);
        assert_eq!(
            r,
            Regex::Concat(vec![
                Regex::sym(&a, a.sym("p")),
                Regex::sym(&a, a.sym("q")),
                Regex::sym(&a, a.sym("p")),
            ])
        );
        assert_eq!(Regex::literal(&a, &[]), Regex::Epsilon);
    }
}
