//! Algebraic regex simplification.
//!
//! The left-filtering maximization algorithm and DFA→regex state elimination
//! both produce syntactically bloated expressions. This module applies
//! language-preserving rewrites bottom-up until a fixpoint. Rules are all
//! purely syntactic — semantic minimization belongs to
//! [`Lang`](crate::lang::Lang) (minimize the DFA, then re-extract a regex).
//!
//! Rules implemented (beyond what the smart constructors already do):
//!
//! * merging unions of single-symbol classes into one class:
//!   `p | q | [r s] → [p q r s]`,
//! * `ε | e → e?`,
//! * `e e* → e+`, `e* e → e+`, `e* e* → e*`,
//! * `(e | ε)` inside star/plus: `(e?)* → e*`,
//! * `e? e* → e*`,
//! * idempotent union collapse (done by `Regex::alt`),
//! * star absorption: `(e*)? → e*` etc. (done by smart constructors).

use super::Regex;

impl Regex {
    /// Simplify bottom-up to a fixpoint (bounded by a few passes; each pass
    /// is size-non-increasing so termination is immediate in practice).
    pub fn simplified(&self) -> Regex {
        let mut cur = self.clone();
        for _ in 0..8 {
            let next = simplify_once(&cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }
}

fn simplify_once(r: &Regex) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Class(_) => r.clone(),
        Regex::Concat(parts) => {
            let parts: Vec<Regex> = parts.iter().map(simplify_once).collect();
            simplify_concat(parts)
        }
        Regex::Alt(parts) => {
            let parts: Vec<Regex> = parts.iter().map(simplify_once).collect();
            simplify_alt(parts)
        }
        Regex::Star(inner) => simplify_once(inner).star(),
        Regex::Plus(inner) => simplify_once(inner).plus(),
        Regex::Opt(inner) => simplify_once(inner).opt(),
        Regex::And(parts) => Regex::and(parts.iter().map(simplify_once)),
        Regex::Not(inner) => simplify_once(inner).not(),
        Regex::Diff(a, b) => simplify_once(a).diff(simplify_once(b)),
    }
}

/// Concatenation rewrites over an already-simplified part list.
fn simplify_concat(parts: Vec<Regex>) -> Regex {
    let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
    for part in parts {
        if let Some(prev) = out.last() {
            // e* e* -> e* ;  e? e* -> e* ;  e* e? -> e*
            if let (Regex::Star(a), Regex::Star(b) | Regex::Opt(b)) = (prev, &part) {
                if a == b {
                    continue;
                }
            }
            if let (Regex::Opt(a), Regex::Star(b)) = (prev, &part) {
                if a == b {
                    let replacement = part.clone();
                    out.pop();
                    out.push(replacement);
                    continue;
                }
            }
            // e e* -> e+ ;  e* e -> e+
            if let Regex::Star(b) = &part {
                if prev == b.as_ref() {
                    out.pop();
                    out.push(part_to_plus(b));
                    continue;
                }
            }
            if let Regex::Star(a) = prev {
                if a.as_ref() == &part {
                    let inner = a.clone();
                    out.pop();
                    out.push(part_to_plus(&inner));
                    continue;
                }
            }
        }
        out.push(part);
    }
    Regex::concat(out)
}

fn part_to_plus(inner: &Regex) -> Regex {
    inner.clone().plus()
}

/// Union rewrites over an already-simplified part list.
fn simplify_alt(parts: Vec<Regex>) -> Regex {
    // Merge all single-symbol-class alternatives into one class.
    let mut class_acc: Option<crate::alphabet::SymbolSet> = None;
    let mut has_epsilon = false;
    let mut rest: Vec<Regex> = Vec::new();
    for p in parts {
        match p {
            Regex::Class(s) => {
                class_acc = Some(match class_acc {
                    None => s,
                    Some(acc) => acc.union(&s),
                });
            }
            Regex::Epsilon => has_epsilon = true,
            other => rest.push(other),
        }
    }
    let mut out: Vec<Regex> = Vec::new();
    if let Some(c) = class_acc {
        out.push(Regex::class(c));
    }
    out.extend(rest);
    if has_epsilon {
        // ε | e  →  e?   when there is exactly one other branch; otherwise
        // keep ε explicit only if no branch is already nullable.
        if out.len() == 1 {
            let only = out.pop().expect("len checked");
            return only.opt();
        }
        let some_nullable = out.iter().any(|r| r.syntactic_nullable() == Some(true));
        if !some_nullable {
            return Regex::alt(out).opt();
        }
    }
    Regex::alt(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q", "r", "s"])
    }

    fn simp(s: &str) -> String {
        let a = ab();
        Regex::parse(&a, s).unwrap().simplified().to_text(&a)
    }

    #[test]
    fn merges_symbol_unions_into_classes() {
        assert_eq!(simp("p | q"), "[p q]");
        assert_eq!(simp("p | q | r | s"), ".");
        assert_eq!(simp("(p | q | r)*"), "[^s]*");
    }

    #[test]
    fn epsilon_union_becomes_opt() {
        assert_eq!(simp("~ | p"), "p?");
        assert_eq!(simp("~ | p q"), "(p q)?");
        // already-nullable branch keeps plain union shape
        assert_eq!(simp("~ | p*"), "p*");
    }

    #[test]
    fn star_concat_collapses() {
        assert_eq!(simp("p* p*"), "p*");
        assert_eq!(simp("p p*"), "p+");
        assert_eq!(simp("p* p"), "p+");
        assert_eq!(simp("p? p*"), "p*");
        assert_eq!(simp("p* p?"), "p*");
    }

    #[test]
    fn nested_simplification_reaches_fixpoint() {
        assert_eq!(simp("(p | q) | (q | r)"), "[^s]");
        assert_eq!(simp("((p?)*)?"), "p*");
        assert_eq!(simp("(~ | p) (~ | p)*"), "p*");
    }

    #[test]
    fn simplification_is_idempotent() {
        let a = ab();
        for s in ["p* p q | ~ | q", "(p | q)* (p | q)", "!(p - q)*"] {
            let once = Regex::parse(&a, s).unwrap().simplified();
            assert_eq!(once.simplified(), once);
        }
    }
}
