//! Brzozowski derivatives: a second, independent regex→DFA pipeline.
//!
//! The derivative of a language `L` by a symbol `a` is
//! `a⁻¹L = { w | a·w ∈ L }`. Brzozowski showed derivatives of a regex are
//! computable syntactically and that a regex has finitely many derivatives
//! up to the ACI axioms (associativity/commutativity/idempotence of `|`),
//! giving a direct DFA construction: states are derivative classes, the
//! transition on `a` is "take the derivative".
//!
//! This crate's primary pipeline is Thompson → subset construction →
//! Hopcroft ([`crate::dfa`]). The derivative path exists because
//!
//! 1. it handles the extended operators (`&`, `!`, `-`) *natively* —
//!    derivatives distribute through them, no product constructions;
//! 2. it is an **independent implementation** against which the primary
//!    pipeline is cross-checked (tests here and in `tests/properties.rs`);
//! 3. the `automata_ops` bench compares the two constructions.
//!
//! Normalization here applies the smart constructors (which realize ACI
//! for `|` via flatten+dedupe) plus class-level merging; that keeps the
//! state count finite, though not minimal — callers wanting canonical
//! form chain [`Dfa::minimized`].

use super::Regex;
use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::symbol::Symbol;
use std::collections::HashMap;

impl Regex {
    /// Is ε in the language? Exact for **all** operators (unlike the
    /// syntactic [`Regex::syntactic_nullable`]), because derivatives give
    /// a direct recursion: complement flips, intersection conjoins.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty => false,
            Regex::Epsilon => true,
            Regex::Class(_) => false,
            Regex::Concat(v) => v.iter().all(Regex::nullable),
            Regex::Alt(v) => v.iter().any(Regex::nullable),
            Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Plus(r) => r.nullable(),
            Regex::And(v) => v.iter().all(Regex::nullable),
            Regex::Not(r) => !r.nullable(),
            Regex::Diff(a, b) => a.nullable() && !b.nullable(),
        }
    }

    /// The Brzozowski derivative `sym⁻¹ self`.
    // `alphabet` is part of the public signature for symmetry with the rest
    // of the regex API even though the derivative itself never consults it.
    #[allow(clippy::only_used_in_recursion)]
    pub fn derivative(&self, alphabet: &Alphabet, sym: Symbol) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Class(set) => {
                if set.contains(sym) {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(v) => {
                // d(r₁·r₂…) = d(r₁)·rest  |  [r₁ nullable] d(rest)
                let (head, rest) = v.split_first().expect("concat has ≥2 parts");
                let rest_re = Regex::concat(rest.iter().cloned());
                let first = Regex::concat([head.derivative(alphabet, sym), rest_re.clone()]);
                if head.nullable() {
                    Regex::alt([first, rest_re.derivative(alphabet, sym)])
                } else {
                    first
                }
            }
            Regex::Alt(v) => Regex::alt(v.iter().map(|r| r.derivative(alphabet, sym))),
            Regex::Star(r) => Regex::concat([r.derivative(alphabet, sym), self.clone()]),
            Regex::Plus(r) => Regex::concat([r.derivative(alphabet, sym), r.clone().star()]),
            Regex::Opt(r) => r.derivative(alphabet, sym),
            Regex::And(v) => Regex::and(v.iter().map(|r| r.derivative(alphabet, sym))),
            Regex::Not(r) => r.derivative(alphabet, sym).not(),
            Regex::Diff(a, b) => a
                .derivative(alphabet, sym)
                .diff(b.derivative(alphabet, sym)),
        }
    }

    /// The derivative by a whole word.
    pub fn word_derivative(&self, alphabet: &Alphabet, word: &[Symbol]) -> Regex {
        let mut cur = self.clone();
        for &s in word {
            cur = cur.derivative(alphabet, s).simplified();
        }
        cur
    }

    /// Membership by iterated derivatives — O(|w|) derivative steps, no
    /// automaton. Useful for one-off tests on huge alphabets; compiled
    /// DFAs win for repeated matching.
    pub fn matches(&self, alphabet: &Alphabet, word: &[Symbol]) -> bool {
        self.word_derivative(alphabet, word).nullable()
    }
}

/// Compile a regex to a complete DFA with Brzozowski's construction:
/// states are (normalized) derivatives, discovered on the fly.
///
/// Normalization is `Regex::simplified` plus the constructors' ACI
/// handling — sufficient for termination on every regex we generate, with
/// a hard state cap as a safety net against pathological normalization
/// misses.
pub fn compile_derivative(alphabet: &Alphabet, regex: &Regex) -> Dfa {
    const STATE_CAP: usize = 1 << 20;
    let sigma = alphabet.len();
    let start_re = regex.simplified();
    let mut index: HashMap<Regex, u32> = HashMap::new();
    let mut states: Vec<Regex> = Vec::new();
    let mut table: Vec<u32> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();

    let mut intern = |re: Regex, states: &mut Vec<Regex>, accepting: &mut Vec<bool>| -> u32 {
        if let Some(&ix) = index.get(&re) {
            return ix;
        }
        let ix = states.len() as u32;
        assert!(states.len() < STATE_CAP, "derivative construction exploded");
        accepting.push(re.nullable());
        index.insert(re.clone(), ix);
        states.push(re);
        ix
    };

    let start = intern(start_re, &mut states, &mut accepting);
    let mut cursor = 0usize;
    while cursor < states.len() {
        let re = states[cursor].clone();
        debug_assert_eq!(table.len(), cursor * sigma);
        for sym in alphabet.symbols() {
            let d = re.derivative(alphabet, sym).simplified();
            let ix = intern(d, &mut states, &mut accepting);
            table.push(ix);
        }
        cursor += 1;
    }
    Dfa::from_parts(alphabet.clone(), table, accepting, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::Lang;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn re(s: &str) -> Regex {
        Regex::parse(&ab(), s).unwrap()
    }

    #[test]
    fn nullable_is_exact_for_extended_ops() {
        assert!(re("!p").nullable()); // ε ≠ "p"
        assert!(!re("!(p*)").nullable());
        assert!(re("p* & q*").nullable());
        assert!(!re("p* - ~").nullable());
        assert!(re(".* - p").nullable());
    }

    #[test]
    fn single_derivatives() {
        let a = ab();
        let p = a.sym("p");
        assert_eq!(re("p q").derivative(&a, p).simplified(), re("q"));
        assert_eq!(re("q").derivative(&a, p), Regex::Empty);
        assert_eq!(re("p*").derivative(&a, p).simplified(), re("p*"));
        // d_p(p|pp) = ε|p = p?
        assert_eq!(re("p | p p").derivative(&a, p).simplified(), re("p?"));
    }

    #[test]
    fn matches_agrees_with_dfa_membership() {
        let a = ab();
        for s in [
            "(p q)* p .*",
            "[^p]* p .*",
            "!(p* q) & .*",
            "(q p)* - (q p q p)",
            "p+ q? (p | q q)*",
        ] {
            let r = re(s);
            let lang = Lang::from_regex(&a, &r);
            for w in crate::sample::enumerate_upto(&Lang::universe(&a), 6) {
                assert_eq!(
                    r.matches(&a, &w),
                    lang.contains(&w),
                    "disagreement for {s} on {:?}",
                    a.syms_to_str(&w)
                );
            }
        }
    }

    #[test]
    fn derivative_dfa_equals_thompson_dfa() {
        let a = ab();
        for s in [
            "p q",
            "(p q)* p",
            "[^p]* p .*",
            "(p | p p) p (p | p p)",
            "!(p* q)",
            "(.* - ~ - p - q)*",
            "p* & (q | p p*)",
        ] {
            let r = re(s);
            let via_derivative = compile_derivative(&a, &r).minimized();
            let via_thompson = Dfa::from_regex(&a, &r);
            assert!(
                via_derivative.same_canonical(&via_thompson),
                "pipelines disagree on {s}"
            );
        }
    }

    #[test]
    fn derivative_construction_terminates_on_stars_of_unions() {
        // The classic ACI stress: without idempotent unions, (p|q)* blows
        // up. Our constructors dedupe, so this stays tiny.
        let a = ab();
        let d = compile_derivative(&a, &re("(p | q)* p (p | q)*"));
        assert!(d.num_states() <= 8, "got {} states", d.num_states());
    }

    #[test]
    fn word_derivative_characterizes_suffix_language() {
        // w⁻¹L = { v | w·v ∈ L }: check against the left quotient.
        let a = ab();
        let r = re("(p q)* p");
        let w = a.str_to_syms("p q").unwrap();
        let derived = Lang::from_regex(&a, &r.word_derivative(&a, &w));
        let quotient = Lang::from_regex(&a, &r).left_quotient(&Lang::literal(&a, &w));
        assert_eq!(derived, quotient);
    }
}
