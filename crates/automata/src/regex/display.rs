//! Pretty-printing of regexes in the surface syntax of
//! [`parser`](super::parser), with minimal parentheses.
//!
//! Printing needs an [`Alphabet`] for symbol names, so `Regex` does not
//! implement `Display` directly; use [`Regex::display`] to obtain a
//! displayable adapter. The printer round-trips through the parser:
//! `parse(print(r))` always denotes the same language (and is structurally
//! equal for constructor-normalized regexes).

use super::Regex;
use crate::alphabet::Alphabet;
use std::fmt;

/// Binding strength used to decide parenthesization. Mirrors the parser's
/// precedence levels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Level {
    /// `|`
    Alt,
    /// `-`, `&`
    DiffAnd,
    /// juxtaposition
    Concat,
    /// `*`, `+`, `?`, `!`, atoms
    Postfix,
}

/// Displayable regex adapter returned by [`Regex::display`].
pub struct RegexDisplay<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

impl Regex {
    /// Adapter implementing `Display` using `alphabet` for symbol names.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> RegexDisplay<'a> {
        RegexDisplay {
            regex: self,
            alphabet,
        }
    }

    /// Shorthand: render to a `String`.
    pub fn to_text(&self, alphabet: &Alphabet) -> String {
        self.display(alphabet).to_string()
    }
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write(f, self.regex, self.alphabet, Level::Alt)
    }
}

fn level_of(r: &Regex) -> Level {
    match r {
        Regex::Alt(_) => Level::Alt,
        Regex::And(_) | Regex::Diff(_, _) => Level::DiffAnd,
        Regex::Concat(_) => Level::Concat,
        _ => Level::Postfix,
    }
}

fn write(f: &mut fmt::Formatter<'_>, r: &Regex, ab: &Alphabet, min: Level) -> fmt::Result {
    let needs_parens = level_of(r) < min;
    if needs_parens {
        write!(f, "(")?;
    }
    match r {
        Regex::Empty => write!(f, "[]")?,
        Regex::Epsilon => write!(f, "~")?,
        Regex::Class(set) => {
            if set.is_full() {
                write!(f, ".")?;
            } else if set.len() == 1 {
                let s = set.first().expect("non-empty class");
                write!(f, "{}", ab.name(s))?;
            } else if set.len() * 2 > set.universe() {
                // Complemented form is shorter: print [^ …].
                write!(f, "[^")?;
                for (i, s) in set.complement().iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", ab.name(s))?;
                }
                write!(f, "]")?;
            } else {
                write!(f, "[")?;
                for (i, s) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", ab.name(s))?;
                }
                write!(f, "]")?;
            }
        }
        Regex::Concat(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write(f, p, ab, next_up(Level::Concat))?;
            }
        }
        Regex::Alt(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write(f, p, ab, Level::DiffAnd)?;
            }
        }
        Regex::And(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write(f, p, ab, Level::Concat)?;
            }
        }
        Regex::Diff(a, b) => {
            // Left-associative: left child may be another Diff/And at the
            // same level, right child must bind tighter.
            write(f, a, ab, Level::DiffAnd)?;
            write!(f, " - ")?;
            write(f, b, ab, Level::Concat)?;
        }
        Regex::Star(inner) => {
            write(f, inner, ab, Level::Postfix)?;
            write!(f, "*")?;
        }
        Regex::Plus(inner) => {
            write(f, inner, ab, Level::Postfix)?;
            write!(f, "+")?;
        }
        Regex::Opt(inner) => {
            write(f, inner, ab, Level::Postfix)?;
            write!(f, "?")?;
        }
        Regex::Not(inner) => {
            write!(f, "!")?;
            write(f, inner, ab, Level::Postfix)?;
        }
    }
    if needs_parens {
        write!(f, ")")?;
    }
    Ok(())
}

fn next_up(l: Level) -> Level {
    match l {
        Level::Alt => Level::DiffAnd,
        Level::DiffAnd => Level::Concat,
        Level::Concat | Level::Postfix => Level::Postfix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q", "r"])
    }

    fn round_trip(s: &str) -> String {
        let a = ab();
        Regex::parse(&a, s).unwrap().to_text(&a)
    }

    #[test]
    fn atoms_print() {
        assert_eq!(round_trip("p"), "p");
        assert_eq!(round_trip("~"), "~");
        assert_eq!(round_trip("[]"), "[]");
        assert_eq!(round_trip("."), ".");
        // A class containing most of the universe prints complemented.
        assert_eq!(round_trip("[p q]"), "[^r]");
        assert_eq!(round_trip("[^p]"), "[^p]");
        // A minority class prints positively (universe {p,q,r}: singleton).
        assert_eq!(round_trip("[q]"), "q");
    }

    #[test]
    fn parens_are_minimal() {
        assert_eq!(round_trip("(p q)* p"), "(p q)* p");
        assert_eq!(round_trip("p | q r"), "p | q r");
        assert_eq!(round_trip("(p | q) r"), "(p | q) r");
        assert_eq!(round_trip("p (q | r)"), "p (q | r)");
        assert_eq!(round_trip("!p*"), "!(p*)".replace("(", "").replace(")", ""));
    }

    #[test]
    fn extended_ops_print() {
        assert_eq!(round_trip("p - q"), "p - q");
        assert_eq!(round_trip("p & q"), "p & q");
        assert_eq!(round_trip("(p - q) - r"), "p - q - r");
        assert_eq!(round_trip("p - (q | r)"), "p - (q | r)");
    }

    #[test]
    fn print_parse_round_trip_is_stable() {
        let a = ab();
        for s in [
            "(p q)* p .*",
            "(p | p p) p (p | p p)",
            "[^p]* p .*",
            "(q p)* ([^p]* - (.* q)) p .*",
            "!(p | q)* & .* p",
            "p+ q? (r | ~)",
        ] {
            let r1 = Regex::parse(&a, s).unwrap();
            let text = r1.to_text(&a);
            let r2 = Regex::parse(&a, &text).unwrap();
            assert_eq!(r1, r2, "unstable round trip for {s} -> {text}");
        }
    }
}
