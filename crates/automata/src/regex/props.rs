//! Cheap structural properties of regexes: size, nullability, symbol usage,
//! and literal detection.
//!
//! These are syntactic (no automata construction). `nullable` is exact for
//! the Thompson fragment; for extended operators it is computed semantically
//! by the [`Lang`](crate::lang::Lang) layer instead, so here it is
//! conservative and documented as such.

use super::Regex;
use crate::alphabet::{Alphabet, SymbolSet};
use crate::symbol::Symbol;

impl Regex {
    /// Number of AST nodes. The paper's complexity bounds (Theorem 5.6:
    /// "quadratic in the size of `E1⟨p⟩E2`") are stated against this measure
    /// plus alphabet size; benches report it.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Class(_) => 1,
            Regex::Concat(v) | Regex::Alt(v) | Regex::And(v) => {
                1 + v.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Not(r) => 1 + r.size(),
            Regex::Diff(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Syntactic nullability: `Some(true)`/`Some(false)` when decidable
    /// without automata (the Thompson fragment), `None` when the answer
    /// depends on an extended operator (`Not`, `Diff`, sometimes `And`).
    pub fn syntactic_nullable(&self) -> Option<bool> {
        match self {
            Regex::Empty => Some(false),
            Regex::Epsilon => Some(true),
            Regex::Class(_) => Some(false),
            Regex::Concat(v) => {
                let mut all = true;
                for r in v {
                    match r.syntactic_nullable() {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all = false,
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            Regex::Alt(v) => {
                let mut any_unknown = false;
                for r in v {
                    match r.syntactic_nullable() {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Regex::Star(_) | Regex::Opt(_) => Some(true),
            Regex::Plus(r) => r.syntactic_nullable(),
            Regex::And(v) => {
                // Nullable iff all are; false if any is definitely not.
                let mut all_true = true;
                for r in v {
                    match r.syntactic_nullable() {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_true = false,
                    }
                }
                if all_true {
                    Some(true)
                } else {
                    None
                }
            }
            Regex::Not(_) | Regex::Diff(_, _) => None,
        }
    }

    /// The set of symbols that appear in some class of the regex. This
    /// over-approximates the symbols that can occur in members of the
    /// language for the Thompson fragment, and is purely syntactic for
    /// extended operators.
    pub fn used_symbols(&self, alphabet: &Alphabet) -> SymbolSet {
        let mut set = alphabet.empty_set();
        self.collect_symbols(&mut set);
        set
    }

    fn collect_symbols(&self, out: &mut SymbolSet) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Class(s) => {
                *out = out.union(s);
            }
            Regex::Concat(v) | Regex::Alt(v) | Regex::And(v) => {
                for r in v {
                    r.collect_symbols(out);
                }
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Not(r) => {
                r.collect_symbols(out)
            }
            Regex::Diff(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
        }
    }

    /// If the regex denotes exactly one string (a literal), return it.
    /// Recognizes concatenations of singleton classes and `ε`; returns
    /// `None` for anything else (even if semantically a literal).
    pub fn as_literal(&self) -> Option<Vec<Symbol>> {
        let mut out = Vec::new();
        if self.push_literal(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn push_literal(&self, out: &mut Vec<Symbol>) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Class(s) if s.len() == 1 => {
                out.push(s.first().expect("singleton"));
                true
            }
            Regex::Concat(v) => v.iter().all(|r| r.push_literal(out)),
            _ => false,
        }
    }

    /// Re-express this regex over another alphabet, mapping symbols by
    /// name. Every symbol used must exist (by name) in `to`; classes keep
    /// their membership, so a complemented class like `[^p]` **changes
    /// meaning** if `to` has extra symbols — which is exactly what the
    /// fresh-marker construction of Proposition 5.5 requires (there the
    /// *positive* classes must stay fixed while `Σ` grows). Callers that
    /// need complement-stable remapping should rebuild from semantics
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if a used symbol has no namesake in `to`.
    pub fn remap(&self, from: &Alphabet, to: &Alphabet) -> Regex {
        let map_class = |set: &SymbolSet| -> SymbolSet {
            let mut out = to.empty_set();
            for s in set.iter() {
                let name = from.name(s);
                let t = to
                    .try_sym(name)
                    .unwrap_or_else(|| panic!("symbol {name:?} missing from target alphabet"));
                out.insert(t);
            }
            out
        };
        self.map_classes(&map_class)
    }

    /// Widen every class containing `sym` by also admitting `extra` — the
    /// simultaneous substitution `p → (p | c)` of Proposition 5.5 (on
    /// class-normalized regexes every occurrence of a symbol is a class
    /// membership).
    pub fn widen_sym(&self, sym: Symbol, extra: Symbol) -> Regex {
        self.map_classes(&|set: &SymbolSet| {
            if set.contains(sym) {
                let mut s = set.clone();
                s.insert(extra);
                s
            } else {
                set.clone()
            }
        })
    }

    /// Structure-preserving map over every `Class` leaf.
    fn map_classes(&self, f: &impl Fn(&SymbolSet) -> SymbolSet) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Class(s) => Regex::class(f(s)),
            Regex::Concat(v) => Regex::concat(v.iter().map(|r| r.map_classes(f))),
            Regex::Alt(v) => Regex::alt(v.iter().map(|r| r.map_classes(f))),
            Regex::And(v) => Regex::and(v.iter().map(|r| r.map_classes(f))),
            Regex::Star(r) => r.map_classes(f).star(),
            Regex::Plus(r) => r.map_classes(f).plus(),
            Regex::Opt(r) => r.map_classes(f).opt(),
            Regex::Not(r) => r.map_classes(f).not(),
            Regex::Diff(a, b) => a.map_classes(f).diff(b.map_classes(f)),
        }
    }

    /// Count occurrences of `sym` as a *syntactic* singleton-class leaf.
    /// Used by heuristics that look for pivot occurrences.
    pub fn count_sym_leaves(&self, sym: Symbol) -> usize {
        match self {
            Regex::Class(s) if s.len() == 1 && s.contains(sym) => 1,
            Regex::Class(_) | Regex::Empty | Regex::Epsilon => 0,
            Regex::Concat(v) | Regex::Alt(v) | Regex::And(v) => {
                v.iter().map(|r| r.count_sym_leaves(sym)).sum()
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Opt(r) | Regex::Not(r) => {
                r.count_sym_leaves(sym)
            }
            Regex::Diff(a, b) => a.count_sym_leaves(sym) + b.count_sym_leaves(sym),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q", "r"])
    }

    fn re(s: &str) -> Regex {
        Regex::parse(&ab(), s).unwrap()
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(re("p").size(), 1);
        assert_eq!(re("p q").size(), 3);
        assert_eq!(re("(p | q)*").size(), 4);
    }

    #[test]
    fn syntactic_nullable_thompson_fragment() {
        assert_eq!(re("~").syntactic_nullable(), Some(true));
        assert_eq!(re("[]").syntactic_nullable(), Some(false));
        assert_eq!(re("p*").syntactic_nullable(), Some(true));
        assert_eq!(re("p+").syntactic_nullable(), Some(false));
        assert_eq!(re("p?").syntactic_nullable(), Some(true));
        assert_eq!(re("p q").syntactic_nullable(), Some(false));
        assert_eq!(re("p* q*").syntactic_nullable(), Some(true));
        assert_eq!(re("p | q*").syntactic_nullable(), Some(true));
        assert_eq!(re("p | q").syntactic_nullable(), Some(false));
    }

    #[test]
    fn syntactic_nullable_extended_is_conservative() {
        assert_eq!(re("!p").syntactic_nullable(), None);
        assert_eq!(re("p* - q").syntactic_nullable(), None);
        // And with a definitely-non-nullable operand is decidable.
        assert_eq!(re("p & !q").syntactic_nullable(), Some(false));
    }

    #[test]
    fn used_symbols_collects_classes() {
        let a = ab();
        let s = re("p (q | [p r])*").used_symbols(&a);
        assert!(s.contains(a.sym("p")));
        assert!(s.contains(a.sym("q")));
        assert!(s.contains(a.sym("r")));
        let s2 = re("p p p").used_symbols(&a);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn literal_detection() {
        let a = ab();
        assert_eq!(
            re("p q p").as_literal(),
            Some(a.str_to_syms("p q p").unwrap())
        );
        assert_eq!(re("~").as_literal(), Some(vec![]));
        assert_eq!(re("p*").as_literal(), None);
        assert_eq!(re("[p q]").as_literal(), None);
    }

    #[test]
    fn remap_preserves_structure_by_name() {
        let small = Alphabet::new(["p", "q"]);
        let big = Alphabet::new(["x", "p", "q", "y"]);
        let r = Regex::parse(&small, "(p q)* p").unwrap();
        let m = r.remap(&small, &big);
        assert_eq!(m.to_text(&big), "(p q)* p");
    }

    #[test]
    #[should_panic(expected = "missing from target alphabet")]
    fn remap_rejects_missing_symbols() {
        let small = Alphabet::new(["p", "q"]);
        let other = Alphabet::new(["p"]);
        Regex::parse(&small, "p q").unwrap().remap(&small, &other);
    }

    #[test]
    fn widen_sym_substitutes_in_classes() {
        let a = Alphabet::new(["p", "q", "c"]);
        let r = Regex::parse(&a, "q p [p q]").unwrap();
        let w = r.widen_sym(a.sym("p"), a.sym("c"));
        // p → [p c] (prints complemented as [^q]); [p q] → [p q c] = Σ = ".".
        assert_eq!(w.to_text(&a), "q [^q] .");
        // classes not containing p are untouched
        let r2 = Regex::parse(&a, "q*").unwrap();
        assert_eq!(r2.widen_sym(a.sym("p"), a.sym("c")), r2);
    }

    #[test]
    fn sym_leaf_counting() {
        let a = ab();
        assert_eq!(re("p q p* (p | q)").count_sym_leaves(a.sym("p")), 3);
        assert_eq!(re("[p q]").count_sym_leaves(a.sym("p")), 0);
    }
}
