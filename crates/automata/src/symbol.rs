//! Interned alphabet symbols.
//!
//! A [`Symbol`] is a dense index into an [`Alphabet`](crate::alphabet::Alphabet).
//! The paper's languages range over token alphabets (HTML tags such as
//! `FORM`, `INPUT`, `/TD`), so symbols carry no character semantics — they
//! are opaque, totally ordered identifiers that print via their alphabet.

use std::fmt;

/// An interned symbol: a dense index into its owning alphabet.
///
/// Symbols are meaningful only relative to the [`Alphabet`](crate::alphabet::Alphabet) that created
/// them. Two symbols from different alphabets must never be mixed; the
/// higher-level types ([`Lang`](crate::lang::Lang),
/// [`Dfa`](crate::dfa::Dfa)) enforce this by checking alphabet identity.
/// `repr(transparent)`: a `&[Symbol]` is layout-identical to `&[u32]`,
/// which the vectorized classifier relies on for direct lane loads.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// Construct a symbol from a raw index.
    ///
    /// Prefer [`Alphabet::sym`](crate::alphabet::Alphabet::sym); this is for
    /// loops over `0..alphabet.len()`.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        Symbol(u32::try_from(ix).expect("alphabet index exceeds u32"))
    }

    /// The dense index of this symbol within its alphabet.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let s = Symbol::from_index(7);
        assert_eq!(s.index(), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Symbol::from_index(1) < Symbol::from_index(2));
        assert_eq!(Symbol::from_index(3), Symbol::from_index(3));
    }

    #[test]
    fn debug_is_compact() {
        assert_eq!(format!("{:?}", Symbol::from_index(4)), "s4");
    }
}
