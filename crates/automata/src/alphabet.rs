//! Finite alphabets and dense symbol sets.
//!
//! Everything in the paper is relative to a fixed finite alphabet `Σ`:
//! complements, `Σ*`, `Σ − p`, universality. An [`Alphabet`] is an immutable,
//! cheaply cloneable (reference-counted) list of named symbols; a
//! [`SymbolSet`] is a bitset over one alphabet used both as a regex character
//! class and as the transition label domain.

use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Source of [`Alphabet::uid`] values: every constructed alphabet gets a
/// process-unique id, never reused (unlike a pointer address), so caches
/// keyed by it can outlive the alphabet without ABA hazards.
static NEXT_UID: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct AlphabetInner {
    uid: u64,
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

/// An immutable finite alphabet `Σ`.
///
/// Cloning is cheap (an `Arc` bump). Alphabet *identity* (pointer equality)
/// is what higher layers check when combining languages; two structurally
/// equal alphabets created separately are still compatible because
/// compatibility is defined by [`Alphabet::compatible`] (same symbol names in
/// the same order).
#[derive(Clone)]
pub struct Alphabet {
    inner: Arc<AlphabetInner>,
}

impl Alphabet {
    /// Build an alphabet from symbol names. Panics on duplicate names —
    /// a duplicate is always a construction bug, never data-dependent.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let prev = by_name.insert(n.clone(), i as u32);
            assert!(prev.is_none(), "duplicate alphabet symbol {n:?}");
        }
        Alphabet {
            inner: Arc::new(AlphabetInner {
                uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
                names,
                by_name,
            }),
        }
    }

    /// A process-unique id for this alphabet (shared by clones, distinct
    /// across separate constructions — even structurally equal ones).
    /// Lets per-alphabet caches (e.g. a tag-name → symbol memo) validate
    /// themselves cheaply without holding the alphabet alive.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.inner.uid
    }

    /// Number of symbols in `Σ`.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.names.len()
    }

    /// True if the alphabet has no symbols. (Degenerate but legal: the only
    /// languages over it are `∅` and `{ε}`.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.names.is_empty()
    }

    /// Look up a symbol by name, panicking if absent. Use in code where the
    /// name is a literal the caller controls.
    #[inline]
    pub fn sym(&self, name: &str) -> Symbol {
        self.try_sym(name)
            .unwrap_or_else(|| panic!("symbol {name:?} not in alphabet"))
    }

    /// Look up a symbol by name.
    #[inline]
    pub fn try_sym(&self, name: &str) -> Option<Symbol> {
        self.inner.by_name.get(name).map(|&i| Symbol(i))
    }

    /// The display name of a symbol.
    #[inline]
    pub fn name(&self, s: Symbol) -> &str {
        &self.inner.names[s.index()]
    }

    /// Iterate over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.len()).map(Symbol::from_index)
    }

    /// Two alphabets are compatible iff they list the same names in the same
    /// order. Pointer-equal alphabets short-circuit.
    pub fn compatible(&self, other: &Alphabet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.names == other.inner.names
    }

    /// Parse a whitespace-separated string of symbol names into a symbol
    /// sequence. Returns the offending name on failure.
    pub fn str_to_syms(&self, s: &str) -> Result<Vec<Symbol>, String> {
        s.split_whitespace()
            .map(|w| self.try_sym(w).ok_or_else(|| w.to_string()))
            .collect()
    }

    /// Render a symbol sequence as a whitespace-separated string.
    pub fn syms_to_str(&self, syms: &[Symbol]) -> String {
        syms.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The full set `Σ`.
    pub fn full_set(&self) -> SymbolSet {
        let mut s = SymbolSet::empty(self.len());
        for i in 0..self.len() {
            s.insert(Symbol::from_index(i));
        }
        s
    }

    /// The empty set over this alphabet.
    pub fn empty_set(&self) -> SymbolSet {
        SymbolSet::empty(self.len())
    }

    /// The singleton set `{sym}`.
    pub fn singleton(&self, sym: Symbol) -> SymbolSet {
        let mut s = SymbolSet::empty(self.len());
        s.insert(sym);
        s
    }

    /// The co-singleton set `Σ − {sym}` — the paper's ubiquitous `Σ − p`.
    pub fn without(&self, sym: Symbol) -> SymbolSet {
        let mut s = self.full_set();
        s.remove(sym);
        s
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Alphabet{:?}", self.inner.names)
    }
}

/// A dense bitset of symbols over a fixed alphabet size.
///
/// Used as regex character classes and DFA transition-label groups. All
/// binary operations require operands of the same universe size.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolSet {
    /// Bit `i` of word `i / 64` is set iff symbol `i` is a member.
    words: Vec<u64>,
    /// Size of the universe (alphabet length), *not* the member count.
    universe: usize,
}

impl SymbolSet {
    /// The empty set over a universe of `universe` symbols.
    pub fn empty(universe: usize) -> Self {
        SymbolSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// Universe size this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of member symbols.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no symbol is a member.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if every universe symbol is a member.
    pub fn is_full(&self) -> bool {
        self.len() == self.universe
    }

    #[inline]
    pub fn contains(&self, s: Symbol) -> bool {
        let i = s.index();
        debug_assert!(i < self.universe);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    pub fn insert(&mut self, s: Symbol) {
        let i = s.index();
        assert!(i < self.universe, "symbol outside set universe");
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    pub fn remove(&mut self, s: Symbol) {
        let i = s.index();
        assert!(i < self.universe, "symbol outside set universe");
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Set union.
    pub fn union(&self, other: &SymbolSet) -> SymbolSet {
        self.zip_words(other, |a, b| a | b)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &SymbolSet) -> SymbolSet {
        self.zip_words(other, |a, b| a & b)
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &SymbolSet) -> SymbolSet {
        self.zip_words(other, |a, b| a & !b)
    }

    /// Complement within the universe.
    pub fn complement(&self) -> SymbolSet {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &SymbolSet) -> bool {
        assert_eq!(
            self.universe, other.universe,
            "symbol-set universe mismatch"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Iterate members in index order.
    pub fn iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.universe)
            .map(Symbol::from_index)
            .filter(move |&s| self.contains(s))
    }

    /// An arbitrary member, if any (the least-index one).
    pub fn first(&self) -> Option<Symbol> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(Symbol::from_index(wi * 64 + w.trailing_zeros() as usize));
            }
        }
        None
    }

    fn zip_words(&self, other: &SymbolSet, f: impl Fn(u64, u64) -> u64) -> SymbolSet {
        assert_eq!(
            self.universe, other.universe,
            "symbol-set universe mismatch"
        );
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut out = SymbolSet {
            words,
            universe: self.universe,
        };
        out.mask_tail();
        out
    }

    fn mask_tail(&mut self) {
        let rem = self.universe % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for SymbolSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{:?}", s)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Alphabet {
        Alphabet::new(["a", "b", "c"])
    }

    #[test]
    fn lookup_and_names() {
        let ab = abc();
        assert_eq!(ab.len(), 3);
        let b = ab.sym("b");
        assert_eq!(ab.name(b), "b");
        assert_eq!(b.index(), 1);
        assert!(ab.try_sym("z").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        Alphabet::new(["a", "a"]);
    }

    #[test]
    fn string_round_trip() {
        let ab = abc();
        let syms = ab.str_to_syms("a c b a").unwrap();
        assert_eq!(ab.syms_to_str(&syms), "a c b a");
        assert_eq!(ab.str_to_syms("a z"), Err("z".to_string()));
        assert_eq!(ab.str_to_syms("").unwrap(), vec![]);
    }

    #[test]
    fn compatibility() {
        let a1 = abc();
        let a2 = a1.clone();
        let a3 = abc();
        let a4 = Alphabet::new(["a", "b"]);
        assert!(a1.compatible(&a2));
        assert!(a1.compatible(&a3));
        assert!(!a1.compatible(&a4));
    }

    #[test]
    fn set_basic_ops() {
        let ab = abc();
        let mut s = ab.empty_set();
        assert!(s.is_empty());
        s.insert(ab.sym("a"));
        s.insert(ab.sym("c"));
        assert_eq!(s.len(), 2);
        assert!(s.contains(ab.sym("a")));
        assert!(!s.contains(ab.sym("b")));
        s.remove(ab.sym("a"));
        assert!(!s.contains(ab.sym("a")));
    }

    #[test]
    fn set_algebra() {
        let ab = abc();
        let a = ab.singleton(ab.sym("a"));
        let not_a = ab.without(ab.sym("a"));
        assert!(a.intersect(&not_a).is_empty());
        assert!(a.union(&not_a).is_full());
        assert_eq!(not_a.complement(), a);
        assert!(a.is_subset(&ab.full_set()));
        assert!(!ab.full_set().is_subset(&a));
        assert_eq!(ab.full_set().difference(&a), not_a);
    }

    #[test]
    fn set_iteration_order() {
        let ab = abc();
        let s = ab.without(ab.sym("b"));
        let names: Vec<&str> = s.iter().map(|x| ab.name(x)).collect();
        assert_eq!(names, ["a", "c"]);
        assert_eq!(s.first(), Some(ab.sym("a")));
        assert_eq!(ab.empty_set().first(), None);
    }

    #[test]
    fn large_universe_tail_masking() {
        let names: Vec<String> = (0..130).map(|i| format!("t{i}")).collect();
        let ab = Alphabet::new(names);
        let full = ab.full_set();
        assert_eq!(full.len(), 130);
        assert!(full.is_full());
        assert!(full.complement().is_empty());
        let one = ab.singleton(Symbol::from_index(129));
        assert_eq!(one.complement().len(), 129);
        assert!(!one.complement().contains(Symbol::from_index(129)));
    }

    #[test]
    fn empty_alphabet_is_legal() {
        let ab = Alphabet::new(Vec::<String>::new());
        assert!(ab.is_empty());
        assert!(ab.full_set().is_empty());
    }
}
