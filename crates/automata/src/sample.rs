//! Enumeration and random sampling of language members.
//!
//! Tests use [`enumerate_upto`] as a brute-force oracle (definitional checks
//! of ambiguity, maximality, quotients on small languages); benches and the
//! resilience experiments use [`Sampler`] to draw random members of a
//! language — e.g. random documents matched by an extraction expression.
//!
//! Sampling is a biased random walk on the DFA restricted to useful states:
//! at each step we either stop (if accepting) or take a uniformly random
//! useful transition, with the stop probability tuned by the target length.
//! This is not uniform over the language; it is deterministic given the RNG
//! seed, cheap, and produces the length spread the experiments need.

use crate::dfa::{Dfa, StateId};
use crate::lang::Lang;
use crate::symbol::Symbol;

/// Enumerate every member of `lang` with length ≤ `max_len`, in
/// length-lexicographic order. Intended for small alphabets/lengths.
pub fn enumerate_upto(lang: &Lang, max_len: usize) -> Vec<Vec<Symbol>> {
    let dfa = lang.dfa();
    let mut out = Vec::new();
    let mut layer: Vec<(Vec<Symbol>, StateId)> = vec![(Vec::new(), dfa.start())];
    if dfa.is_accepting(dfa.start()) {
        out.push(Vec::new());
    }
    for _ in 0..max_len {
        let mut next = Vec::new();
        for (w, q) in &layer {
            for sym in dfa.alphabet().symbols() {
                let t = dfa.next(*q, sym);
                let mut w2 = w.clone();
                w2.push(sym);
                if dfa.is_accepting(t) {
                    out.push(w2.clone());
                }
                next.push((w2, t));
            }
        }
        layer = next;
    }
    out
}

/// Count members of each length `0..=max_len` (dynamic programming over
/// state occupancy — no enumeration, so long lengths are fine).
pub fn count_by_length(lang: &Lang, max_len: usize) -> Vec<u64> {
    let dfa = lang.dfa();
    let n = dfa.num_states();
    let mut occ = vec![0u64; n];
    occ[dfa.start() as usize] = 1;
    let mut out = Vec::with_capacity(max_len + 1);
    for _ in 0..=max_len {
        let accepted: u64 = (0..n)
            .filter(|&q| dfa.is_accepting(q as StateId))
            .map(|q| occ[q])
            .sum();
        out.push(accepted);
        let mut next = vec![0u64; n];
        for (q, &count) in occ.iter().enumerate() {
            if count == 0 {
                continue;
            }
            for sym in dfa.alphabet().symbols() {
                let t = dfa.next(q as StateId, sym) as usize;
                next[t] = next[t].saturating_add(count);
            }
        }
        occ = next;
    }
    out
}

/// A deterministic pseudo-random member sampler for a language.
///
/// Carries its own small xorshift state so the crate needs no RNG
/// dependency; seed it explicitly for reproducible experiments.
pub struct Sampler {
    dfa: Dfa,
    useful: Vec<bool>,
    state: u64,
    /// Soft target length: stopping becomes increasingly likely past it.
    pub target_len: usize,
}

impl Sampler {
    /// Create a sampler for `lang` with RNG `seed` and soft `target_len`.
    pub fn new(lang: &Lang, seed: u64, target_len: usize) -> Sampler {
        let dfa = lang.dfa().clone();
        let useful = dfa.useful_states();
        Sampler {
            dfa,
            useful,
            state: seed.max(1),
            target_len,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Draw one member, or `None` if the language is empty.
    ///
    /// The walk is over useful states only, so it can always finish; to
    /// guarantee termination we force the shortest completion once the word
    /// grows past `4 * target_len + 8`.
    pub fn sample(&mut self) -> Option<Vec<Symbol>> {
        if !self.useful[self.dfa.start() as usize] {
            return None;
        }
        let hard_cap = 4 * self.target_len + 8;
        let mut word = Vec::new();
        let mut q = self.dfa.start();
        loop {
            let stop_ok = self.dfa.is_accepting(q);
            if stop_ok {
                // Stop with probability growing in word length.
                let num = (word.len() as u64 + 1).min(self.target_len as u64 + 1);
                let den = self.target_len as u64 + 2;
                if word.len() >= hard_cap || self.chance(num, den) {
                    return Some(word);
                }
            }
            if word.len() >= hard_cap {
                // Force shortest completion to an accepting state.
                word.extend(self.shortest_completion(q));
                return Some(word);
            }
            let choices: Vec<Symbol> = self
                .dfa
                .alphabet()
                .symbols()
                .filter(|&s| self.useful[self.dfa.next(q, s) as usize])
                .collect();
            if choices.is_empty() {
                // Accepting (else not useful) with nowhere useful to go.
                return Some(word);
            }
            let pick = choices[(self.next_u64() % choices.len() as u64) as usize];
            word.push(pick);
            q = self.dfa.next(q, pick);
        }
    }

    /// BFS shortest path from `q` to an accepting state (exists: `q` is
    /// useful).
    fn shortest_completion(&self, q: StateId) -> Vec<Symbol> {
        use std::collections::VecDeque;
        if self.dfa.is_accepting(q) {
            return Vec::new();
        }
        let n = self.dfa.num_states();
        let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[q as usize] = true;
        let mut queue = VecDeque::from([q]);
        while let Some(cur) = queue.pop_front() {
            for sym in self.dfa.alphabet().symbols() {
                let t = self.dfa.next(cur, sym);
                if seen[t as usize] {
                    continue;
                }
                seen[t as usize] = true;
                parent[t as usize] = Some((cur, sym));
                if self.dfa.is_accepting(t) {
                    let mut path = Vec::new();
                    let mut at = t;
                    while at != q {
                        let (p, s) = parent[at as usize].expect("parent chain");
                        path.push(s);
                        at = p;
                    }
                    path.reverse();
                    return path;
                }
                queue.push_back(t);
            }
        }
        unreachable!("useful state must reach acceptance")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn l(s: &str) -> Lang {
        Lang::parse(&ab(), s).unwrap()
    }

    #[test]
    fn enumerate_small_language() {
        let a = ab();
        let words = enumerate_upto(&l("(p q)*"), 4);
        let strs: Vec<String> = words.iter().map(|w| a.syms_to_str(w)).collect();
        assert_eq!(strs, ["", "p q", "p q p q"]);
    }

    #[test]
    fn enumerate_respects_membership() {
        let lang = l("(p | p p) p");
        for w in enumerate_upto(&lang, 5) {
            assert!(lang.contains(&w));
        }
        // And completeness: all members up to the bound appear.
        assert_eq!(enumerate_upto(&lang, 5).len(), 2); // "p p", "p p p"
    }

    #[test]
    fn counting_matches_enumeration() {
        let lang = l("(p | q q)*");
        let counts = count_by_length(&lang, 6);
        let words = enumerate_upto(&lang, 6);
        for (len, &count) in counts.iter().enumerate() {
            let enumerated = words.iter().filter(|w| w.len() == len).count() as u64;
            assert_eq!(count, enumerated, "length {len}");
        }
    }

    #[test]
    fn sampler_produces_members() {
        let lang = l("(p q)* p .*");
        let mut s = Sampler::new(&lang, 42, 10);
        for _ in 0..200 {
            let w = s.sample().expect("non-empty language");
            assert!(lang.contains(&w), "sampled non-member");
        }
    }

    #[test]
    fn sampler_handles_empty_language() {
        let mut s = Sampler::new(&l("[]"), 7, 5);
        assert_eq!(s.sample(), None);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let lang = l("(p | q)* p");
        let draw = |seed| {
            let mut s = Sampler::new(&lang, seed, 8);
            (0..20).map(|_| s.sample().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn sampler_finite_language_terminates() {
        let lang = l("p q | q p");
        let mut s = Sampler::new(&lang, 9, 50);
        for _ in 0..50 {
            let w = s.sample().unwrap();
            assert!(lang.contains(&w));
            assert_eq!(w.len(), 2);
        }
    }
}
