//! Hash-consing of canonical minimal DFAs.
//!
//! Every [`Lang`](crate::lang::Lang) in the process is a handle into one
//! [`Interner`]: canonical minimal DFAs are bucketed by
//! [`Dfa::canonical_hash`], confirmed with [`Dfa::same_canonical`], and
//! deduplicated behind [`Arc`]. Interning two different constructions of
//! the same language yields the same [`LangId`], which is what makes
//! language equality an O(1) id compare.
//!
//! Ids are never recycled: a [`LangId`] stays valid for the life of the
//! process, so the interner only grows (the memoized *operation* cache in
//! [`store`](crate::store) is the resettable part).

use crate::dfa::Dfa;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of an interned language. Equal ids ⟺ equal languages (over
/// compatible alphabets).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LangId(pub(crate) u32);

impl LangId {
    /// Dense index into the interner's DFA table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Deduplicating table of canonical minimal DFAs.
pub(crate) struct Interner {
    /// canonical hash → candidate ids (collisions resolved by
    /// `same_canonical`).
    by_hash: HashMap<u64, Vec<u32>>,
    /// id → shared canonical DFA.
    dfas: Vec<Arc<Dfa>>,
    /// Intern calls answered by an already-present DFA.
    dedup_hits: u64,
}

impl Interner {
    pub(crate) fn new() -> Interner {
        Interner {
            by_hash: HashMap::new(),
            dfas: Vec::new(),
            dedup_hits: 0,
        }
    }

    /// Intern a **canonical minimal** DFA (the caller minimizes first),
    /// returning its id and the shared automaton.
    pub(crate) fn intern(&mut self, dfa: Dfa) -> (LangId, Arc<Dfa>) {
        let hash = dfa.canonical_hash();
        let bucket = self.by_hash.entry(hash).or_default();
        for &id in bucket.iter() {
            let candidate = &self.dfas[id as usize];
            if candidate.same_canonical(&dfa) {
                self.dedup_hits += 1;
                return (LangId(id), Arc::clone(candidate));
            }
        }
        let id = u32::try_from(self.dfas.len()).expect("interner overflow");
        let shared = Arc::new(dfa);
        self.dfas.push(Arc::clone(&shared));
        bucket.push(id);
        (LangId(id), shared)
    }

    /// The shared DFA for an id minted by this interner.
    pub(crate) fn get(&self, id: LangId) -> Arc<Dfa> {
        Arc::clone(&self.dfas[id.index()])
    }

    /// Number of distinct languages interned so far.
    pub(crate) fn len(&self) -> usize {
        self.dfas.len()
    }

    pub(crate) fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }
}
