//! Hash-consing of canonical minimal DFAs — concurrent, read-mostly.
//!
//! Every [`Lang`](crate::lang::Lang) in the process is a handle into one
//! [`Interner`]: canonical minimal DFAs are bucketed by
//! [`Dfa::canonical_hash`], confirmed with [`Dfa::same_canonical`], and
//! deduplicated behind [`Arc`]. Interning two different constructions of
//! the same language yields the same [`LangId`], which is what makes
//! language equality an O(1) id compare.
//!
//! Ids are never recycled: a [`LangId`] stays valid for the life of the
//! process, so the interner only grows (the memoized *operation* cache in
//! [`store`](crate::store) is the resettable part).
//!
//! ## Concurrency
//!
//! The interner is split so the hot read path never blocks on writers:
//!
//! * **id → DFA** resolution ([`Interner::get`], which backs every op-cache
//!   hit) reads an *append-only chunk table* with no lock at all — a
//!   `Release` store of the table length publishes each new entry, and an
//!   `Acquire` load on the reader side observes it.
//! * **interning** ([`Interner::intern`]) takes a read lock on the hash
//!   buckets for the common already-interned probe, upgrading to the write
//!   lock only to append a genuinely new language. Concurrent interns of
//!   the same DFA are resolved by re-probing under the write lock, so each
//!   canonical DFA still gets exactly one id.
//!
//! The chunk table doubles geometrically (1024, 2048, 4096, … entries per
//! chunk), so existing entries are never moved — a reader holding an index
//! is immune to concurrent growth, which is what makes the lock-free read
//! sound without hazard pointers or epochs.

use crate::dfa::Dfa;
use crate::fxhash::FxHashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Identity of an interned language. Equal ids ⟺ equal languages (over
/// compatible alphabets).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LangId(pub(crate) u32);

impl LangId {
    /// Dense index into the interner's DFA table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Entries per chunk 0; chunk `k` holds `BASE << k` entries, so 23 chunks
/// cover the full `u32` id space (1024 · (2²³ − 1) > 2³²).
const BASE: usize = 1024;
const CHUNKS: usize = 23;

/// Lock-free append-only `id → Arc<Dfa>` table.
///
/// Invariants: slots `[0, len)` are fully initialized; `push` runs under
/// the interner's bucket write lock (single appender at a time) and
/// publishes with `len.store(Release)`; `get` validates against
/// `len.load(Acquire)` via the caller holding a minted id.
struct AppendOnlyTable {
    chunks: [Chunk; CHUNKS],
    len: AtomicUsize,
}

/// One lazily allocated block of the table: `BASE << k` slots, each
/// written exactly once by `push`.
type Chunk = OnceLock<Box<[OnceLock<Arc<Dfa>>]>>;

/// Chunk index and offset for entry `i`.
fn locate(i: usize) -> (usize, usize) {
    let b = i / BASE + 1;
    let k = (usize::BITS - 1 - b.leading_zeros()) as usize;
    (k, i - BASE * ((1 << k) - 1))
}

impl AppendOnlyTable {
    fn new() -> AppendOnlyTable {
        AppendOnlyTable {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Append `dfa`, returning its index. Caller must hold the bucket
    /// write lock (sole appender).
    fn push(&self, dfa: Arc<Dfa>) -> usize {
        let i = self.len.load(Ordering::Relaxed);
        let (k, off) = locate(i);
        let chunk =
            self.chunks[k].get_or_init(|| (0..(BASE << k)).map(|_| OnceLock::new()).collect());
        chunk[off]
            .set(dfa)
            .unwrap_or_else(|_| unreachable!("append slot written twice"));
        // Publish: readers that Acquire a len > i see slot i initialized.
        self.len.store(i + 1, Ordering::Release);
        i
    }

    /// The shared DFA at `i`. Panics if `i` was never published — callers
    /// only hold indices minted by `push`.
    fn get(&self, i: usize) -> Arc<Dfa> {
        debug_assert!(i < self.len.load(Ordering::Acquire));
        let (k, off) = locate(i);
        let chunk = self.chunks[k].get().expect("chunk published");
        Arc::clone(chunk[off].get().expect("slot published"))
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

/// Deduplicating table of canonical minimal DFAs. Shared by reference
/// across threads; all methods take `&self`.
pub(crate) struct Interner {
    /// canonical hash → candidate ids (collisions resolved by
    /// `same_canonical`). Read-locked on the probe path, write-locked only
    /// to append.
    by_hash: RwLock<FxHashMap<u64, Vec<u32>>>,
    /// id → shared canonical DFA (lock-free reads).
    dfas: AppendOnlyTable,
    /// Intern calls answered by an already-present DFA.
    dedup_hits: AtomicU64,
}

impl Interner {
    pub(crate) fn new() -> Interner {
        Interner {
            by_hash: RwLock::new(FxHashMap::default()),
            dfas: AppendOnlyTable::new(),
            dedup_hits: AtomicU64::new(0),
        }
    }

    /// Probe `bucket` for a DFA canonically equal to `dfa`.
    fn probe(&self, bucket: &[u32], dfa: &Dfa) -> Option<(LangId, Arc<Dfa>)> {
        for &id in bucket {
            let candidate = self.dfas.get(id as usize);
            if candidate.same_canonical(dfa) {
                return Some((LangId(id), candidate));
            }
        }
        None
    }

    /// Intern a **canonical minimal** DFA (the caller minimizes first),
    /// returning its id and the shared automaton.
    pub(crate) fn intern(&self, dfa: Dfa) -> (LangId, Arc<Dfa>) {
        let hash = dfa.canonical_hash();
        // Fast path: already interned — read lock only.
        {
            let buckets = self.by_hash.read().unwrap_or_else(|e| e.into_inner());
            if let Some(found) = buckets.get(&hash).and_then(|b| self.probe(b, &dfa)) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return found;
            }
        }
        // Slow path: append under the write lock, re-probing first — a
        // racing intern of the same DFA may have won between the locks.
        let mut buckets = self.by_hash.write().unwrap_or_else(|e| e.into_inner());
        if let Some(found) = buckets.get(&hash).and_then(|b| self.probe(b, &dfa)) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        let shared = Arc::new(dfa);
        let index = self.dfas.push(Arc::clone(&shared));
        let id = u32::try_from(index).expect("interner overflow");
        buckets.entry(hash).or_default().push(id);
        (LangId(id), shared)
    }

    /// The shared DFA for an id minted by this interner. Lock-free.
    pub(crate) fn get(&self, id: LangId) -> Arc<Dfa> {
        self.dfas.get(id.index())
    }

    /// Number of distinct languages interned so far.
    pub(crate) fn len(&self) -> usize {
        self.dfas.len()
    }

    pub(crate) fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::locate;

    #[test]
    fn chunk_layout_is_dense_and_in_bounds() {
        // Walk the boundaries of the first few chunks: indices map to
        // consecutive (chunk, offset) pairs with no gaps or overlaps.
        let mut expect_next = 0usize;
        for k in 0..6 {
            let cap = super::BASE << k;
            let base = super::BASE * ((1 << k) - 1);
            assert_eq!(
                base,
                expect_next,
                "chunk {k} starts where {} ended",
                k.max(1) - 1
            );
            assert_eq!(locate(base), (k, 0));
            assert_eq!(locate(base + cap - 1), (k, cap - 1));
            expect_next = base + cap;
        }
        // 22 chunks cover the whole u32 id space.
        let (k, off) = locate(u32::MAX as usize);
        assert!(k < super::CHUNKS);
        assert!(off < super::BASE << k);
    }
}
