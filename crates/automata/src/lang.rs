//! `Lang`: a regular language as a value.
//!
//! [`Lang`] pairs a **canonical minimal DFA** with its alphabet and exposes
//! the whole algebra the paper uses — boolean operations, quotients,
//! concatenation, star, reversal, decision procedures — with value
//! semantics: `==` is language equality (cheap, by canonical-form
//! comparison), results are always re-canonicalized.
//!
//! This is the type the extraction layer computes with; raw [`Dfa`]/[`Nfa`]
//! stay internal to hot paths.

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::regex::Regex;
use crate::symbol::Symbol;
use std::fmt;

/// A regular language over an explicit alphabet, in canonical minimal-DFA
/// form. Cloning is O(DFA size); equality is O(DFA size) structural
/// comparison of canonical forms.
#[derive(Clone)]
pub struct Lang {
    alphabet: Alphabet,
    dfa: Dfa,
}

impl Lang {
    /// The empty language `∅`.
    pub fn empty(alphabet: &Alphabet) -> Lang {
        Lang::from_dfa(Dfa::empty_lang(alphabet))
    }

    /// The language `{ε}`.
    pub fn epsilon(alphabet: &Alphabet) -> Lang {
        Lang::from_regex(alphabet, &Regex::Epsilon)
    }

    /// `Σ*`.
    pub fn universe(alphabet: &Alphabet) -> Lang {
        Lang::from_dfa(Dfa::universal(alphabet))
    }

    /// The singleton language `{sym}`.
    pub fn sym(alphabet: &Alphabet, sym: Symbol) -> Lang {
        Lang::from_regex(alphabet, &Regex::sym(alphabet, sym))
    }

    /// The singleton language containing exactly `word`.
    pub fn literal(alphabet: &Alphabet, word: &[Symbol]) -> Lang {
        Lang::from_regex(alphabet, &Regex::literal(alphabet, word))
    }

    /// Compile a regex (extended operators included).
    pub fn from_regex(alphabet: &Alphabet, regex: &Regex) -> Lang {
        Lang::from_dfa(Dfa::from_regex(alphabet, regex))
    }

    /// Parse-and-compile (convenience for tests/examples).
    pub fn parse(alphabet: &Alphabet, text: &str) -> Result<Lang, crate::regex::ParseError> {
        Ok(Lang::from_regex(alphabet, &Regex::parse(alphabet, text)?))
    }

    /// Wrap a DFA, canonicalizing it.
    pub fn from_dfa(dfa: Dfa) -> Lang {
        let dfa = dfa.minimized();
        Lang {
            alphabet: dfa.alphabet().clone(),
            dfa,
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The canonical minimal DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Number of states of the canonical DFA — the natural size measure for
    /// reporting (benches plot against it).
    pub fn num_states(&self) -> usize {
        self.dfa.num_states()
    }

    /// Membership.
    pub fn contains(&self, word: &[Symbol]) -> bool {
        self.dfa.accepts(word)
    }

    // ----- boolean algebra -------------------------------------------------

    /// `self ∪ other`.
    pub fn union(&self, other: &Lang) -> Lang {
        Lang::from_dfa(self.dfa.union(&other.dfa))
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &Lang) -> Lang {
        Lang::from_dfa(self.dfa.intersect(&other.dfa))
    }

    /// `self − other`.
    pub fn difference(&self, other: &Lang) -> Lang {
        Lang::from_dfa(self.dfa.difference(&other.dfa))
    }

    /// `Σ* − self`.
    pub fn complement(&self) -> Lang {
        Lang::from_dfa(self.dfa.complement())
    }

    // ----- rational operations ---------------------------------------------

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Lang) -> Lang {
        let n1 = Nfa::from_dfa(&self.dfa);
        let n2 = Nfa::from_dfa(&other.dfa);
        Lang::from_dfa(Dfa::from_nfa(&nfa_concat2(n1, n2)))
    }

    /// Kleene star `self*`.
    pub fn star(&self) -> Lang {
        Lang::from_dfa(Dfa::from_nfa(&nfa_star(Nfa::from_dfa(&self.dfa))))
    }

    /// Reversal `{ wᴿ | w ∈ self }`.
    pub fn reversed(&self) -> Lang {
        Lang::from_dfa(Dfa::from_nfa(&Nfa::from_dfa(&self.dfa).reversed()))
    }

    // ----- quotients (Definition 5.1) ---------------------------------------

    /// Suffix factorization `self / by = { α | ∃β ∈ by, α·β ∈ self }`.
    pub fn right_quotient(&self, by: &Lang) -> Lang {
        Lang::from_dfa(self.dfa.right_quotient(&by.dfa))
    }

    /// Prefix factorization `by \ self = { α | ∃β ∈ by, β·α ∈ self }`.
    pub fn left_quotient(&self, by: &Lang) -> Lang {
        Lang::from_dfa(self.dfa.left_quotient(&by.dfa))
    }

    // ----- decision procedures ----------------------------------------------

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.dfa.is_empty_lang()
    }

    /// Is the language `Σ*`? (Lemma 5.9's test; exponential only through the
    /// regex→DFA step, linear here.)
    pub fn is_universal(&self) -> bool {
        self.dfa.is_universal()
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Lang) -> bool {
        self.dfa.is_subset_of(&other.dfa)
    }

    /// Does ε belong to the language?
    pub fn is_nullable(&self) -> bool {
        self.dfa.accepts(&[])
    }

    /// A shortest member, or `None` when empty. Deterministic.
    pub fn shortest_member(&self) -> Option<Vec<Symbol>> {
        self.dfa.shortest_member()
    }

    /// A shortest string in the symmetric difference with `other`.
    pub fn difference_witness(&self, other: &Lang) -> Option<Vec<Symbol>> {
        self.dfa.difference_witness(&other.dfa)
    }

    /// Largest number of `marker` occurrences in any member; `None` if
    /// unbounded. See [`Dfa::max_marker_count`].
    pub fn max_marker_count(&self, marker: Symbol) -> Option<usize> {
        self.dfa.max_marker_count(marker)
    }

    /// Is the language finite?
    pub fn is_finite(&self) -> bool {
        self.dfa.is_finite_lang()
    }

    /// Number of members, or `None` when infinite (saturating at
    /// `u64::MAX`).
    pub fn count_members(&self) -> Option<u64> {
        self.dfa.count_members()
    }

    /// A regex denoting this language (state elimination + simplification).
    pub fn to_regex(&self) -> Regex {
        self.dfa.to_regex()
    }

    /// Render via [`Lang::to_regex`].
    pub fn to_text(&self) -> String {
        self.to_regex().to_text(&self.alphabet)
    }
}

/// NFA concatenation of two single-part NFAs (helper for [`Lang::concat`]).
fn nfa_concat2(n1: Nfa, n2: Nfa) -> Nfa {
    // Reuse the regex-free composition path in `dfa`: express via assemble.
    let alphabet = n1.alphabet().clone();
    let off = n1.num_states() as u32;
    let mut edges = Vec::new();
    let mut eps = Vec::new();
    let mut accepting = Vec::new();
    for q in 0..n1.num_states() as u32 {
        for (set, t) in n1.transitions(q) {
            edges.push((q, set.clone(), t));
        }
        for t in n1.eps_transitions(q) {
            eps.push((q, t));
        }
        if n1.is_accepting(q) {
            for &s2 in n2.starts() {
                eps.push((q, s2 + off));
            }
        }
    }
    for q in 0..n2.num_states() as u32 {
        for (set, t) in n2.transitions(q) {
            edges.push((q + off, set.clone(), t + off));
        }
        for t in n2.eps_transitions(q) {
            eps.push((q + off, t + off));
        }
        if n2.is_accepting(q) {
            accepting.push(q + off);
        }
    }
    let starts = n1.starts().to_vec();
    Nfa::assemble(
        alphabet,
        off + n2.num_states() as u32,
        edges,
        eps,
        starts,
        accepting,
    )
}

/// NFA Kleene star: fresh accepting hub with ε to starts and from accepts.
fn nfa_star(inner: Nfa) -> Nfa {
    let alphabet = inner.alphabet().clone();
    let hub = inner.num_states() as u32;
    let mut edges = Vec::new();
    let mut eps = Vec::new();
    let mut accepting = vec![hub];
    for q in 0..inner.num_states() as u32 {
        for (set, t) in inner.transitions(q) {
            edges.push((q, set.clone(), t));
        }
        for t in inner.eps_transitions(q) {
            eps.push((q, t));
        }
        if inner.is_accepting(q) {
            accepting.push(q);
            eps.push((q, hub));
        }
    }
    for &s in inner.starts() {
        eps.push((hub, s));
    }
    Nfa::assemble(alphabet, hub + 1, edges, eps, vec![hub], accepting)
}

impl PartialEq for Lang {
    fn eq(&self, other: &Self) -> bool {
        self.dfa.same_canonical(&other.dfa)
    }
}

impl Eq for Lang {}

impl fmt::Debug for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lang({})", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn l(s: &str) -> Lang {
        Lang::parse(&ab(), s).unwrap()
    }

    #[test]
    fn equality_is_language_equality() {
        assert_eq!(l("p p*"), l("p+"));
        assert_eq!(l("(p | q)*"), l(".*"));
        assert_ne!(l("p*"), l("p+"));
    }

    #[test]
    fn algebra_laws() {
        let x = l("(p q)* p?");
        let y = l("q .*");
        assert_eq!(x.union(&y), y.union(&x));
        assert_eq!(x.intersect(&x), x);
        assert_eq!(x.difference(&x), l("[]"));
        assert_eq!(x.complement().complement(), x);
        assert_eq!(x.union(&x.complement()), l(".*"));
    }

    #[test]
    fn concat_and_star() {
        assert_eq!(l("p").concat(&l("q")), l("p q"));
        assert_eq!(l("p | ~").concat(&l("q*")), l("p? q*"));
        assert_eq!(l("p q").star(), l("(p q)*"));
        assert_eq!(l("[]").star(), l("~"));
    }

    #[test]
    fn reversal() {
        assert_eq!(l("p q q").reversed(), l("q q p"));
        assert_eq!(l("(p q)*").reversed(), l("(q p)*"));
        assert_eq!(l(".*").reversed(), l(".*"));
    }

    #[test]
    fn quotients_via_lang() {
        // (qp)* / (p·Σ*) = (qp)* q  (see quotient module tests)
        let e = l("(q p)*");
        assert_eq!(e.right_quotient(&l("p .*")), l("(q p)* q"));
        // left quotient: (pq) \ (p q p q) = p q
        assert_eq!(l("p q p q").left_quotient(&l("p q")), l("p q"));
    }

    #[test]
    fn decision_procedures() {
        assert!(l("[]").is_empty());
        assert!(!l("~").is_empty());
        assert!(l(".*").is_universal());
        assert!(l("(p q)+").is_subset_of(&l("(p q)*")));
        assert!(l("p*").is_nullable());
        assert!(!l("p+").is_nullable());
    }

    #[test]
    fn literal_and_membership() {
        let a = ab();
        let w = a.str_to_syms("p q p").unwrap();
        let lit = Lang::literal(&a, &w);
        assert!(lit.contains(&w));
        assert!(!lit.contains(&a.str_to_syms("p q").unwrap()));
        assert_eq!(lit.shortest_member(), Some(w));
    }

    #[test]
    fn marker_count_passthrough() {
        let a = ab();
        assert_eq!(l("q* p q* p q*").max_marker_count(a.sym("p")), Some(2));
        assert_eq!(l("(q p)*").max_marker_count(a.sym("p")), None);
    }

    #[test]
    fn finiteness_and_cardinality() {
        assert!(l("[]").is_finite());
        assert_eq!(l("[]").count_members(), Some(0));
        assert_eq!(l("~").count_members(), Some(1));
        assert_eq!(l("p | q q | q p q").count_members(), Some(3));
        assert_eq!(l("(p | q) (p | q)").count_members(), Some(4));
        assert_eq!(l("p? q?").count_members(), Some(4));
        assert!(!l("p*").is_finite());
        assert_eq!(l("p*").count_members(), None);
        // A cycle outside the useful subgraph does not make it infinite:
        // (p p)* q & q has a p-cycle that never reaches acceptance.
        assert_eq!(l("((p p)* q) & q").count_members(), Some(1));
    }

    #[test]
    fn debug_shows_regex() {
        let s = format!("{:?}", l("p q"));
        assert!(s.starts_with("Lang("), "{s}");
    }
}
