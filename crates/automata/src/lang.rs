//! `Lang`: a regular language as a cheap interned handle.
//!
//! [`Lang`] is a handle into the process-global [`Store`]: it carries the
//! [`LangId`] of its hash-consed canonical minimal DFA plus a shared
//! [`Arc`] to the automaton itself. The whole algebra the paper uses —
//! boolean operations, quotients, concatenation, star, reversal, decision
//! procedures — routes through the store's memoized operation cache, so
//! repeated subexpressions are computed once per process.
//!
//! Consequences of the handle representation:
//! * **Clone is O(1)** (an `Arc` bump + id copy).
//! * **`==` is an O(1) id compare** — hash-consing guarantees equal
//!   languages over compatible alphabets intern to the same id.
//! * `Lang` implements [`Hash`] (by id), so languages key hash maps.
//!
//! `Lang` is `Send + Sync` and freely shared across threads: resolving a
//! handle back to its DFA reads the interner's append-only table without
//! locking, and the op cache behind the algebra is sharded, so concurrent
//! computations on unrelated languages rarely touch the same lock.
//!
//! This is the type the extraction layer computes with; raw [`Dfa`]/
//! [`Nfa`](crate::nfa::Nfa) stay internal to hot paths.

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::intern::LangId;
use crate::regex::Regex;
use crate::store::Store;
use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// A regular language over an explicit alphabet: an interned handle to a
/// canonical minimal DFA. Cloning is O(1); equality is an O(1) id
/// compare.
#[derive(Clone)]
pub struct Lang {
    id: LangId,
    dfa: Arc<Dfa>,
}

impl Lang {
    /// The empty language `∅`.
    pub fn empty(alphabet: &Alphabet) -> Lang {
        Lang::from_dfa(Dfa::empty_lang(alphabet))
    }

    /// The language `{ε}`.
    pub fn epsilon(alphabet: &Alphabet) -> Lang {
        Lang::from_regex(alphabet, &Regex::Epsilon)
    }

    /// `Σ*`.
    pub fn universe(alphabet: &Alphabet) -> Lang {
        Lang::from_dfa(Dfa::universal(alphabet))
    }

    /// The singleton language `{sym}`.
    pub fn sym(alphabet: &Alphabet, sym: Symbol) -> Lang {
        Lang::from_regex(alphabet, &Regex::sym(alphabet, sym))
    }

    /// The singleton language containing exactly `word`.
    pub fn literal(alphabet: &Alphabet, word: &[Symbol]) -> Lang {
        Lang::from_regex(alphabet, &Regex::literal(alphabet, word))
    }

    /// Compile a regex (extended operators included).
    pub fn from_regex(alphabet: &Alphabet, regex: &Regex) -> Lang {
        Lang::from_dfa(Dfa::from_regex(alphabet, regex))
    }

    /// Parse-and-compile (convenience for tests/examples).
    pub fn parse(alphabet: &Alphabet, text: &str) -> Result<Lang, crate::regex::ParseError> {
        Ok(Lang::from_regex(alphabet, &Regex::parse(alphabet, text)?))
    }

    /// Wrap a DFA: minimize, hash-cons, and return the canonical handle.
    pub fn from_dfa(dfa: Dfa) -> Lang {
        Store::intern_dfa(dfa)
    }

    /// Store-internal constructor: `dfa` is the interned automaton `id`
    /// refers to.
    pub(crate) fn from_store(id: LangId, dfa: Arc<Dfa>) -> Lang {
        Lang { id, dfa }
    }

    /// The interned identity of this language. Equal ids ⟺ equal
    /// languages.
    pub fn id(&self) -> LangId {
        self.id
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        self.dfa.alphabet()
    }

    /// The canonical minimal DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Number of states of the canonical DFA — the natural size measure for
    /// reporting (benches plot against it).
    pub fn num_states(&self) -> usize {
        self.dfa.num_states()
    }

    /// Membership.
    pub fn contains(&self, word: &[Symbol]) -> bool {
        self.dfa.accepts(word)
    }

    // ----- boolean algebra (memoized) --------------------------------------

    /// `self ∪ other`.
    pub fn union(&self, other: &Lang) -> Lang {
        Store::global().union(self, other)
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &Lang) -> Lang {
        Store::global().intersect(self, other)
    }

    /// `self − other`.
    pub fn difference(&self, other: &Lang) -> Lang {
        Store::global().difference(self, other)
    }

    /// `Σ* − self`.
    pub fn complement(&self) -> Lang {
        Store::global().complement(self)
    }

    // ----- rational operations (memoized) ----------------------------------

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Lang) -> Lang {
        Store::global().concat(self, other)
    }

    /// Kleene star `self*`.
    pub fn star(&self) -> Lang {
        Store::global().star(self)
    }

    /// Reversal `{ wᴿ | w ∈ self }`.
    pub fn reversed(&self) -> Lang {
        Store::global().reversed(self)
    }

    // ----- quotients (Definition 5.1, memoized) -----------------------------

    /// Suffix factorization `self / by = { α | ∃β ∈ by, α·β ∈ self }`.
    pub fn right_quotient(&self, by: &Lang) -> Lang {
        Store::global().right_quotient(self, by)
    }

    /// Prefix factorization `by \ self = { α | ∃β ∈ by, β·α ∈ self }`.
    pub fn left_quotient(&self, by: &Lang) -> Lang {
        Store::global().left_quotient(self, by)
    }

    // ----- decision procedures (memoized) -----------------------------------

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        Store::global().is_empty(self)
    }

    /// Is the language `Σ*`? (Lemma 5.9's test; exponential only through the
    /// regex→DFA step, linear here.)
    pub fn is_universal(&self) -> bool {
        Store::global().is_universal(self)
    }

    /// `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Lang) -> bool {
        Store::global().is_subset(self, other)
    }

    /// Does ε belong to the language? (O(1) on the canonical DFA — not
    /// worth a cache entry.)
    pub fn is_nullable(&self) -> bool {
        self.dfa.accepts(&[])
    }

    // ----- analyses on the shared DFA ---------------------------------------

    /// A shortest member, or `None` when empty. Deterministic.
    pub fn shortest_member(&self) -> Option<Vec<Symbol>> {
        self.dfa.shortest_member()
    }

    /// A shortest string in the symmetric difference with `other`.
    pub fn difference_witness(&self, other: &Lang) -> Option<Vec<Symbol>> {
        self.dfa.difference_witness(&other.dfa)
    }

    /// Largest number of `marker` occurrences in any member; `None` if
    /// unbounded. See [`Dfa::max_marker_count`].
    pub fn max_marker_count(&self, marker: Symbol) -> Option<usize> {
        self.dfa.max_marker_count(marker)
    }

    /// Is the language finite?
    pub fn is_finite(&self) -> bool {
        self.dfa.is_finite_lang()
    }

    /// Number of members, or `None` when infinite (saturating at
    /// `u64::MAX`).
    pub fn count_members(&self) -> Option<u64> {
        self.dfa.count_members()
    }

    /// A regex denoting this language (state elimination + simplification).
    pub fn to_regex(&self) -> Regex {
        self.dfa.to_regex()
    }

    /// Render via [`Lang::to_regex`].
    pub fn to_text(&self) -> String {
        self.to_regex().to_text(self.alphabet())
    }
}

impl PartialEq for Lang {
    /// O(1): hash-consing guarantees equal languages share an id.
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Lang {}

impl std::hash::Hash for Lang {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Debug for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lang#{}({})", self.id.index(), self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["p", "q"])
    }

    fn l(s: &str) -> Lang {
        Lang::parse(&ab(), s).unwrap()
    }

    #[test]
    fn equality_is_language_equality() {
        assert_eq!(l("p p*"), l("p+"));
        assert_eq!(l("(p | q)*"), l(".*"));
        assert_ne!(l("p*"), l("p+"));
    }

    #[test]
    fn equal_languages_share_one_interned_id() {
        let a = l("p p*");
        let b = l("p+");
        assert_eq!(a.id(), b.id());
        assert!(
            Arc::ptr_eq(&a.dfa, &b.dfa),
            "hash-consing must share the DFA"
        );
        assert_ne!(l("p*").id(), l("p+").id());
    }

    #[test]
    fn clone_shares_the_same_automaton() {
        let x = l("(p q)* p?");
        let y = x.clone();
        assert_eq!(x.id(), y.id());
        assert!(Arc::ptr_eq(&x.dfa, &y.dfa));
    }

    #[test]
    fn algebra_laws() {
        let x = l("(p q)* p?");
        let y = l("q .*");
        assert_eq!(x.union(&y), y.union(&x));
        assert_eq!(x.intersect(&x), x);
        assert_eq!(x.difference(&x), l("[]"));
        assert_eq!(x.complement().complement(), x);
        assert_eq!(x.union(&x.complement()), l(".*"));
    }

    #[test]
    fn concat_and_star() {
        assert_eq!(l("p").concat(&l("q")), l("p q"));
        assert_eq!(l("p | ~").concat(&l("q*")), l("p? q*"));
        assert_eq!(l("p q").star(), l("(p q)*"));
        assert_eq!(l("[]").star(), l("~"));
    }

    #[test]
    fn reversal() {
        assert_eq!(l("p q q").reversed(), l("q q p"));
        assert_eq!(l("(p q)*").reversed(), l("(q p)*"));
        assert_eq!(l(".*").reversed(), l(".*"));
    }

    #[test]
    fn quotients_via_lang() {
        // (qp)* / (p·Σ*) = (qp)* q  (see quotient module tests)
        let e = l("(q p)*");
        assert_eq!(e.right_quotient(&l("p .*")), l("(q p)* q"));
        // left quotient: (pq) \ (p q p q) = p q
        assert_eq!(l("p q p q").left_quotient(&l("p q")), l("p q"));
    }

    #[test]
    fn decision_procedures() {
        assert!(l("[]").is_empty());
        assert!(!l("~").is_empty());
        assert!(l(".*").is_universal());
        assert!(l("(p q)+").is_subset_of(&l("(p q)*")));
        assert!(l("p*").is_nullable());
        assert!(!l("p+").is_nullable());
    }

    #[test]
    fn cached_ops_agree_with_uncached() {
        let x = l("(p q)* p?");
        let y = l("q .*");
        let u = Store::uncached();
        assert_eq!(x.union(&y), u.union(&x, &y));
        assert_eq!(x.intersect(&y), u.intersect(&x, &y));
        assert_eq!(x.difference(&y), u.difference(&x, &y));
        assert_eq!(x.concat(&y), u.concat(&x, &y));
        assert_eq!(x.complement(), u.complement(&x));
        assert_eq!(x.star(), u.star(&x));
        assert_eq!(x.reversed(), u.reversed(&x));
        assert_eq!(x.right_quotient(&y), u.right_quotient(&x, &y));
        assert_eq!(x.left_quotient(&y), u.left_quotient(&x, &y));
        assert_eq!(x.is_empty(), u.is_empty(&x));
        assert_eq!(x.is_universal(), u.is_universal(&x));
        assert_eq!(x.is_subset_of(&y), u.is_subset(&x, &y));
    }

    #[test]
    fn literal_and_membership() {
        let a = ab();
        let w = a.str_to_syms("p q p").unwrap();
        let lit = Lang::literal(&a, &w);
        assert!(lit.contains(&w));
        assert!(!lit.contains(&a.str_to_syms("p q").unwrap()));
        assert_eq!(lit.shortest_member(), Some(w));
    }

    #[test]
    fn marker_count_passthrough() {
        let a = ab();
        assert_eq!(l("q* p q* p q*").max_marker_count(a.sym("p")), Some(2));
        assert_eq!(l("(q p)*").max_marker_count(a.sym("p")), None);
    }

    #[test]
    fn finiteness_and_cardinality() {
        assert!(l("[]").is_finite());
        assert_eq!(l("[]").count_members(), Some(0));
        assert_eq!(l("~").count_members(), Some(1));
        assert_eq!(l("p | q q | q p q").count_members(), Some(3));
        assert_eq!(l("(p | q) (p | q)").count_members(), Some(4));
        assert_eq!(l("p? q?").count_members(), Some(4));
        assert!(!l("p*").is_finite());
        assert_eq!(l("p*").count_members(), None);
        // A cycle outside the useful subgraph does not make it infinite:
        // (p p)* q & q has a p-cycle that never reaches acceptance.
        assert_eq!(l("((p p)* q) & q").count_members(), Some(1));
    }

    #[test]
    fn debug_shows_regex() {
        let s = format!("{:?}", l("p q"));
        assert!(s.starts_with("Lang#"), "{s}");
    }
}
