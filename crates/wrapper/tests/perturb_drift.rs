//! Perturbation severity as a drift dial: the more edits a page
//! absorbs, the lower a fixed wrapper's exact-extraction rate — the
//! degradation curve the daemon's drift detector watches for. A
//! maximized wrapper shrugs off light perturbation (the resilience
//! guarantee) but degrades monotonically as the edits pile up, which is
//! exactly what makes `learn::perturb` a usable drift simulator.

use rextract_learn::perturb::Perturber;
use rextract_wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract_wrapper::{TrainPage, Wrapper, WrapperConfig};

/// Fraction of `pages` perturbed Plain pages whose ground-truth target
/// the wrapper still extracts exactly.
fn extraction_rate(
    w: &Wrapper,
    g: &mut SiteGenerator,
    perturber: &mut Perturber,
    edits: usize,
    pages: usize,
) -> f64 {
    let mut ok = 0;
    for _ in 0..pages {
        let p = g.page_with_style(PageStyle::Plain);
        let e = perturber.perturb(&p.tokens, p.target, edits);
        if w.extract_target(&e.tokens) == Ok(e.target) {
            ok += 1;
        }
    }
    ok as f64 / pages as f64
}

#[test]
fn severity_monotonically_degrades_extraction_rate() {
    for perturb_seed in [7u64, 29] {
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 61,
            ..SiteConfig::default()
        });
        let train = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
        ];
        let w = Wrapper::train(&train, WrapperConfig::default()).unwrap();

        let severities = [0usize, 2, 6, 12, 24];
        let mut perturber = Perturber::new(perturb_seed);
        let rates: Vec<f64> = severities
            .iter()
            .map(|&edits| extraction_rate(&w, &mut g, &mut perturber, edits, 150))
            .collect();

        // Unperturbed in-family pages always extract exactly.
        assert!(
            rates[0] >= 0.99,
            "seed {perturb_seed}: clean rate {rates:?}"
        );
        // Rates fall (within sampling jitter) as severity climbs…
        for i in 1..rates.len() {
            assert!(
                rates[i] <= rates[i - 1] + 0.05,
                "seed {perturb_seed}: rate rose with severity: {rates:?}"
            );
        }
        // …and heavy drift genuinely breaks the wrapper.
        assert!(
            rates[rates.len() - 1] < 0.8,
            "seed {perturb_seed}: heavy drift barely degraded: {rates:?}"
        );
    }
}
