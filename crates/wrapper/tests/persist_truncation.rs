//! Torn-artifact robustness: an exported wrapper chopped at *every* byte
//! offset must import as a clean error (or, for cuts that only shave the
//! trailing newline, as a behaviourally identical wrapper) — never panic,
//! never a silently different wrapper. Random byte flips must likewise be
//! caught by the checksum trailer.

use proptest::prelude::*;
use rextract_wrapper::persist::PersistError;
use rextract_wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract_wrapper::wrapper::{TrainPage, Wrapper, WrapperConfig};

fn trained() -> Wrapper {
    let mut g = SiteGenerator::new(SiteConfig {
        seed: 5,
        ..SiteConfig::default()
    });
    let pages = vec![
        TrainPage::from(&g.page_with_style(PageStyle::Plain)),
        TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
    ];
    Wrapper::train(&pages, WrapperConfig::default()).unwrap()
}

#[test]
fn every_prefix_is_rejected_or_equivalent() {
    let w = trained();
    let artifact = w.export();
    for cut in 0..artifact.len() {
        let prefix = &artifact[..cut];
        match Wrapper::import(prefix) {
            // Only a cut past the full trailer (shaving the final
            // newline) may still import — and then it must reproduce the
            // original wrapper exactly.
            Ok(w2) => {
                assert!(
                    cut >= artifact.trim_end().len(),
                    "prefix of {cut}/{} bytes imported",
                    artifact.len()
                );
                assert_eq!(w2.export(), artifact, "prefix at {cut} changed behaviour");
            }
            // A cut inside the first line is not recognizable as an
            // artifact at all; every later cut removes or mangles the
            // trailer and must say so.
            Err(PersistError::BadHeader) => {
                assert!(cut < "rextract-wrapper v2".len(), "BadHeader at {cut}")
            }
            Err(PersistError::Truncated) => {}
            Err(e) => panic!("prefix at {cut} gave unexpected error {e:?}"),
        }
    }
}

#[test]
fn every_suffix_amputation_of_two_bytes_is_rejected() {
    // Removing an interior span (not just a suffix) must also be caught:
    // the checksum no longer matches, or the trailer/header is gone.
    let w = trained();
    let artifact = w.export();
    for start in 0..artifact.len() - 2 {
        let mut cut = artifact.as_bytes().to_vec();
        cut.drain(start..start + 2);
        let Ok(text) = String::from_utf8(cut) else {
            continue;
        };
        assert!(
            Wrapper::import(&text).is_err(),
            "dropping bytes {start}..{} went unnoticed",
            start + 2
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single flipped byte is caught — as a checksum mismatch if it
    /// falls in the covered region, as a header/trailer diagnosis
    /// otherwise. (A flip can never import successfully: every byte of
    /// the artifact is load-bearing.)
    #[test]
    fn single_byte_flip_is_caught(pos in 0usize..4096, bit in 0usize..8) {
        let artifact = trained().export();
        // Stay inside the trimmed artifact: flipping the final newline to
        // other whitespace is (correctly) not an error.
        let pos = pos % artifact.trim_end().len();
        let mut bytes = artifact.as_bytes().to_vec();
        bytes[pos] ^= 1 << bit;
        if let Ok(text) = String::from_utf8(bytes) {
            if text != artifact {
                prop_assert!(
                    Wrapper::import(&text).is_err(),
                    "flip at byte {} bit {} went unnoticed", pos, bit
                );
            }
        }
    }

    /// Arbitrary garbage never panics the importer.
    #[test]
    fn garbage_never_panics(input in "\\PC{0,128}") {
        let _ = Wrapper::import(&input);
    }
}
