//! The resilience experiment harness — experiment E5.
//!
//! The paper's evaluation evidence is the claim that its maximization
//! algorithms "are sufficient to provide resilient extraction capabilities"
//! for the authors' harvesting system. This module makes that claim
//! measurable: train wrappers with and without maximization on the same
//! sample pages, subject fresh pages to increasing numbers of structural
//! edits, and count how often each wrapper still finds the target.
//!
//! Used by `examples/resilience_study.rs` and the `resilience` bench.

use crate::locator::TargetLocator;
use crate::site::SiteGenerator;
use rextract_automata::{Store, StoreStats};
use rextract_learn::perturb::Perturber;
use std::fmt;

/// One row of the resilience table: outcome counts at a fixed edit budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceRow {
    /// Number of structural edits applied to each test page.
    pub edits: usize,
    /// Number of test pages.
    pub trials: usize,
    /// Successful extractions per wrapper, in the order given to
    /// [`resilience_table`].
    pub successes: Vec<usize>,
}

impl ResilienceRow {
    /// Success rate of wrapper `i`, in `[0, 1]`.
    pub fn rate(&self, i: usize) -> f64 {
        self.successes[i] as f64 / self.trials as f64
    }
}

/// A full resilience table with named wrapper columns.
#[derive(Debug, Clone)]
pub struct ResilienceTable {
    /// Column names (wrapper labels).
    pub labels: Vec<String>,
    /// One row per edit budget.
    pub rows: Vec<ResilienceRow>,
    /// Language-store counter deltas over the whole experiment.
    pub store_stats: StoreStats,
}

impl fmt::Display for ResilienceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6} {:>7}", "edits", "trials")?;
        for l in &self.labels {
            write!(f, " {l:>14}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:>6} {:>7}", r.edits, r.trials)?;
            for i in 0..self.labels.len() {
                write!(f, " {:>13.1}%", 100.0 * r.rate(i))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "store: {}", self.store_stats.summary())?;
        Ok(())
    }
}

/// Run the resilience experiment: for each edit budget, generate `trials`
/// pages, perturb each with that many edits, and test every locator
/// (wrappers, baselines — anything implementing
/// [`TargetLocator`]). Pages come from the
/// default catalog scenario of `site`.
pub fn resilience_table(
    locators: &[(&str, &dyn TargetLocator)],
    site: &mut SiteGenerator,
    perturb_seed: u64,
    edit_budgets: &[usize],
    trials: usize,
) -> ResilienceTable {
    resilience_table_with(
        locators,
        &mut |g: &mut SiteGenerator| g.page(),
        site,
        perturb_seed,
        edit_budgets,
        trials,
    )
}

/// [`resilience_table`] with a custom page scenario (e.g.
/// [`SiteGenerator::listing_page`] for the results-table workload).
pub fn resilience_table_with(
    locators: &[(&str, &dyn TargetLocator)],
    scenario: &mut dyn FnMut(&mut SiteGenerator) -> crate::site::Page,
    site: &mut SiteGenerator,
    perturb_seed: u64,
    edit_budgets: &[usize],
    trials: usize,
) -> ResilienceTable {
    let labels = locators.iter().map(|(l, _)| l.to_string()).collect();
    let stats_before = Store::stats();
    let mut rows = Vec::with_capacity(edit_budgets.len());
    for &edits in edit_budgets {
        let mut perturber = Perturber::new(perturb_seed ^ (edits as u64 + 1));
        let mut successes = vec![0usize; locators.len()];
        for _ in 0..trials {
            let page = scenario(site);
            let edited = perturber.perturb(&page.tokens, page.target, edits);
            for (i, (_, w)) in locators.iter().enumerate() {
                if w.locate(&edited.tokens) == Some(edited.target) {
                    successes[i] += 1;
                }
            }
        }
        rows.push(ResilienceRow {
            edits,
            trials,
            successes,
        });
    }
    ResilienceTable {
        labels,
        rows,
        store_stats: Store::stats().since(&stats_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{PageStyle, SiteConfig};
    use crate::wrapper::{TrainPage, Wrapper, WrapperConfig};

    fn trained(maximize: bool) -> Wrapper {
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 4,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        Wrapper::train(
            &pages,
            WrapperConfig {
                maximize,
                ..WrapperConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn table_shape_and_rates() {
        let maxed = trained(true);
        let raw = trained(false);
        let mut site = SiteGenerator::new(SiteConfig {
            seed: 50,
            ..SiteConfig::default()
        });
        let t = resilience_table(
            &[("maximized", &maxed), ("initial", &raw)],
            &mut site,
            9,
            &[0, 2],
            15,
        );
        assert_eq!(t.labels, ["maximized", "initial"]);
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            assert_eq!(r.trials, 15);
            assert!(r.successes.iter().all(|&s| s <= 15));
        }
        // At zero edits the maximized wrapper must be near-perfect.
        assert!(t.rows[0].rate(0) > 0.9, "{}", t);
        // Display renders without panicking and contains the header.
        let s = t.to_string();
        assert!(s.contains("edits"));
        assert!(s.contains("maximized"));
    }

    #[test]
    fn maximized_dominates_initial_in_the_table() {
        let maxed = trained(true);
        let raw = trained(false);
        let mut site = SiteGenerator::new(SiteConfig {
            seed: 77,
            ..SiteConfig::default()
        });
        let t = resilience_table(
            &[("maximized", &maxed), ("initial", &raw)],
            &mut site,
            13,
            &[1, 3],
            20,
        );
        for r in &t.rows {
            assert!(
                r.successes[0] >= r.successes[1],
                "initial beat maximized at {} edits:\n{}",
                r.edits,
                t
            );
        }
    }
}
