//! Synthetic catalog-site generator.
//!
//! Stands in for the paper's live 1999 vendor pages (Figure 1: "Virtual
//! Supplier, Inc."). Pages are generated as token streams in several
//! layout styles — the plain style of Figure 1 (top), the table-embedded
//! style of Figure 1 (bottom), and richer variants with headers, ads and
//! extra rows — with the extraction target always the **second INPUT of
//! the first FORM** (the paper's running example: the text field next to
//! the search button).
//!
//! Generation is deterministic per seed.

use rextract_html::token::{Attribute, Token};
use rextract_html::writer;

/// Page layout family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageStyle {
    /// Figure 1 (top): header + bare form.
    Plain,
    /// Figure 1 (bottom): everything embedded in a table.
    TableEmbedded,
    /// Table-embedded with extra navigation/ad rows.
    Busy,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// RNG seed (0 is remapped to 1).
    pub seed: u64,
    /// Vendor name placed in headings.
    pub vendor: String,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            seed: 1,
            vendor: "Virtual Supplier, Inc.".to_string(),
        }
    }
}

/// One generated page.
#[derive(Debug, Clone)]
pub struct Page {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token index of the extraction target (2nd INPUT of the 1st FORM).
    pub target: usize,
    /// The layout family used.
    pub style: PageStyle,
}

impl Page {
    /// Render as HTML text.
    pub fn html(&self) -> String {
        writer::write(&self.tokens)
    }
}

/// Deterministic page generator.
#[derive(Debug, Clone)]
pub struct SiteGenerator {
    cfg: SiteConfig,
    state: u64,
}

impl SiteGenerator {
    /// Create from a config.
    pub fn new(cfg: SiteConfig) -> SiteGenerator {
        let state = cfg.seed.max(1);
        SiteGenerator { cfg, state }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, pct: usize) -> bool {
        self.below(100) < pct
    }

    /// Generate a page in a random style.
    pub fn page(&mut self) -> Page {
        let style = match self.below(3) {
            0 => PageStyle::Plain,
            1 => PageStyle::TableEmbedded,
            _ => PageStyle::Busy,
        };
        self.page_with_style(style)
    }

    /// Generate a page in a specific style.
    pub fn page_with_style(&mut self, style: PageStyle) -> Page {
        match style {
            PageStyle::Plain => self.plain_page(),
            PageStyle::TableEmbedded => self.table_page(false),
            PageStyle::Busy => self.table_page(true),
        }
    }

    /// Figure 1 (top): `<p><h1>…</h1><p><form>…</form>`.
    fn plain_page(&mut self) -> Page {
        let mut toks = vec![
            Token::start("p"),
            Token::start("h1"),
            Token::Text(self.cfg.vendor.clone()),
            Token::end("h1"),
            Token::start("p"),
        ];
        if self.chance(40) {
            toks.push(Token::start_with(
                "img",
                vec![Attribute::new("src", "logo.gif")],
            ));
        }
        let (form, target_in_form) = self.search_form();
        let target = toks.len() + target_in_form;
        toks.extend(form);
        toks.push(Token::end("p"));
        Page {
            tokens: toks,
            target,
            style: PageStyle::Plain,
        }
    }

    /// Figure 1 (bottom): table rows with the form in a cell; `busy` adds
    /// navigation and promo rows.
    fn table_page(&mut self, busy: bool) -> Page {
        let mut toks = vec![Token::start("table")];
        // Header row with the supplier image.
        toks.extend([
            Token::start("tr"),
            Token::start("th"),
            Token::start_with("img", vec![Attribute::new("src", "supplier.gif")]),
            Token::end("th"),
            Token::end("tr"),
        ]);
        // Title row.
        toks.extend([
            Token::start("tr"),
            Token::start("td"),
            Token::start("h1"),
            Token::Text(self.cfg.vendor.clone()),
            Token::end("h1"),
            Token::end("td"),
            Token::end("tr"),
        ]);
        // Optional navigation / promo rows.
        let extra_rows = if busy {
            1 + self.below(4)
        } else {
            self.below(2)
        };
        for _ in 0..extra_rows {
            toks.extend(self.link_row());
        }
        // The form row.
        toks.extend([Token::start("tr"), Token::start("td")]);
        let (form, target_in_form) = self.search_form();
        let target = toks.len() + target_in_form;
        toks.extend(form);
        toks.extend([Token::end("td"), Token::end("tr")]);
        // Trailing rows after the form.
        if busy {
            for _ in 0..self.below(3) {
                toks.extend(self.link_row());
            }
        }
        toks.push(Token::end("table"));
        Page {
            tokens: toks,
            target,
            style: if busy {
                PageStyle::Busy
            } else {
                PageStyle::TableEmbedded
            },
        }
    }

    /// A product-listing results page (the page a shopbot reaches *after*
    /// submitting the search form): a table of product rows, each
    /// `name | price`. The extraction target is the **price cell (second
    /// TD) of the first product row** — the paper's "element in a table
    /// generated by a form fill-out".
    ///
    /// Layout variation: optional title, optional header row (TH cells),
    /// 1–6 product rows, optional promo rows after the listing.
    pub fn listing_page(&mut self) -> Page {
        let mut toks = Vec::new();
        if self.chance(50) {
            toks.extend([
                Token::start("h1"),
                Token::Text(format!("{} — results", self.cfg.vendor)),
                Token::end("h1"),
            ]);
        }
        toks.push(Token::start("table"));
        if self.chance(60) {
            toks.extend([
                Token::start("tr"),
                Token::start("th"),
                Token::Text("Product".into()),
                Token::end("th"),
                Token::start("th"),
                Token::Text("Price".into()),
                Token::end("th"),
                Token::end("tr"),
            ]);
        }
        let products = 1 + self.below(6);
        let mut target = usize::MAX;
        for i in 0..products {
            toks.extend([
                Token::start("tr"),
                Token::start("td"),
                Token::Text(format!("Widget #{:03}", self.below(1000))),
                Token::end("td"),
            ]);
            if i == 0 {
                target = toks.len(); // the upcoming price <td>
            }
            toks.extend([
                Token::start("td"),
                Token::Text(format!("${}.{:02}", 1 + self.below(500), self.below(100))),
                Token::end("td"),
                Token::end("tr"),
            ]);
        }
        for _ in 0..self.below(3) {
            toks.extend(self.link_row());
        }
        toks.push(Token::end("table"));
        assert_ne!(target, usize::MAX, "at least one product row");
        Page {
            tokens: toks,
            target,
            style: PageStyle::Busy,
        }
    }

    /// `<tr><td><a href=…>…</a></td></tr>`.
    fn link_row(&mut self) -> Vec<Token> {
        let (href, label) = match self.below(4) {
            0 => ("cust.html", "Customer Service"),
            1 => ("order.html", "Order Status"),
            2 => ("promo.html", "Weekly Specials"),
            _ => ("contact.html", "Contact Us"),
        };
        vec![
            Token::start("tr"),
            Token::start("td"),
            Token::start_with("a", vec![Attribute::new("href", href)]),
            Token::Text(label.to_string()),
            Token::end("a"),
            Token::end("td"),
            Token::end("tr"),
        ]
    }

    /// The search form of Figure 1. Returns the tokens and the index of
    /// the target (2nd INPUT) within them.
    fn search_form(&mut self) -> (Vec<Token>, usize) {
        let mut toks = vec![Token::start_with(
            "form",
            vec![
                Attribute::new("method", "post"),
                Attribute::new("action", "search.cgi"),
            ],
        )];
        toks.push(Token::start_with(
            "input",
            vec![
                Attribute::new("type", "image"),
                Attribute::new("src", "search.gif"),
            ],
        ));
        let target = toks.len();
        toks.push(Token::start_with(
            "input",
            vec![
                Attribute::new("type", "text"),
                Attribute::new("size", "15"),
                Attribute::new("name", "value"),
            ],
        ));
        if self.chance(50) {
            toks.push(Token::start("br"));
        }
        toks.extend([
            Token::start_with(
                "input",
                vec![
                    Attribute::new("type", "radio"),
                    Attribute::new("name", "attr"),
                    Attribute::new("value", "1"),
                    Attribute::new("checked", ""),
                ],
            ),
            Token::Text(" Keywords".to_string()),
            Token::start("br"),
            Token::start_with(
                "input",
                vec![
                    Attribute::new("type", "radio"),
                    Attribute::new("name", "attr"),
                    Attribute::new("value", "2"),
                ],
            ),
            Token::Text(" Manufacturer Part#".to_string()),
            Token::end("form"),
        ]);
        (toks, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> SiteGenerator {
        SiteGenerator::new(SiteConfig {
            seed,
            ..SiteConfig::default()
        })
    }

    #[test]
    fn target_is_second_input_of_first_form() {
        for seed in 1..40 {
            let mut g = generator(seed);
            let page = g.page();
            let t = &page.tokens[page.target];
            assert_eq!(t.tag_name(), Some("INPUT"));
            assert_eq!(t.attr("type"), Some("text"), "seed {seed}");
            // It is the 2nd INPUT overall after the 1st FORM.
            let form_at = page
                .tokens
                .iter()
                .position(|t| t.tag_name() == Some("FORM"))
                .unwrap();
            let second_input = page
                .tokens
                .iter()
                .enumerate()
                .skip(form_at)
                .filter(|(_, t)| t.tag_name() == Some("INPUT"))
                .map(|(i, _)| i)
                .nth(1)
                .unwrap();
            assert_eq!(page.target, second_input);
        }
    }

    #[test]
    fn styles_differ_structurally() {
        let mut g = generator(5);
        let plain = g.page_with_style(PageStyle::Plain);
        let table = g.page_with_style(PageStyle::TableEmbedded);
        assert!(plain.tokens.iter().all(|t| t.tag_name() != Some("TABLE")));
        assert!(table.tokens.iter().any(|t| t.tag_name() == Some("TABLE")));
    }

    #[test]
    fn deterministic_per_seed() {
        let p1 = generator(9).page();
        let p2 = generator(9).page();
        assert_eq!(p1.tokens, p2.tokens);
        assert_eq!(p1.target, p2.target);
    }

    #[test]
    fn html_round_trips_through_tokenizer() {
        let mut g = generator(3);
        for _ in 0..10 {
            let page = g.page();
            let re = rextract_html::tokenizer::tokenize(&page.html());
            assert_eq!(re, page.tokens);
        }
    }

    #[test]
    fn listing_page_targets_first_price_cell() {
        for seed in 1..30 {
            let mut g = generator(seed);
            let page = g.listing_page();
            let t = &page.tokens[page.target];
            assert_eq!(t.tag_name(), Some("TD"), "seed {seed}");
            // The next token must be the price text.
            match &page.tokens[page.target + 1] {
                Token::Text(s) => assert!(s.starts_with('$'), "seed {seed}: {s}"),
                other => panic!("seed {seed}: expected price text, got {other:?}"),
            }
            // And it must be the second TD of its row.
            let row_start = page.tokens[..page.target]
                .iter()
                .rposition(|t| t.tag_name() == Some("TR"))
                .unwrap();
            let tds_before: usize = page.tokens[row_start..page.target]
                .iter()
                .filter(|t| matches!(t, Token::StartTag { name, .. } if name == "TD"))
                .count();
            assert_eq!(tds_before, 1, "seed {seed}");
        }
    }

    #[test]
    fn listing_pages_round_trip_through_tokenizer() {
        let mut g = generator(8);
        for _ in 0..5 {
            let page = g.listing_page();
            assert_eq!(
                rextract_html::tokenizer::tokenize(&page.html()),
                page.tokens
            );
        }
    }

    #[test]
    fn busy_pages_have_more_rows() {
        let mut g = generator(17);
        let count_rows = |p: &Page| {
            p.tokens
                .iter()
                .filter(|t| matches!(t, Token::StartTag { name, .. } if name == "TR"))
                .count()
        };
        // On average busy > plain-table; spot check a fixed seed pair.
        let table = g.page_with_style(PageStyle::TableEmbedded);
        let busy = g.page_with_style(PageStyle::Busy);
        assert!(count_rows(&busy) >= count_rows(&table));
    }
}
