//! Wrapper persistence: export a trained wrapper as a small text artifact
//! and re-import it later.
//!
//! Training is the expensive step (merging + maximization); a production
//! shopbot trains once per site and ships the wrapper. The format is
//! line-oriented and human-auditable — the expression is stored in the
//! same `E1 <p> E2` syntax the rest of the toolkit reads, so an exported
//! wrapper can be inspected with `rextract analyze`:
//!
//! ```text
//! rextract-wrapper v1
//! seq include_text=false include_end_tags=true
//! alphabet #other /FORM /H1 FORM H1 INPUT P
//! expr [^FORM]* FORM [^INPUT]* INPUT [^INPUT]* <INPUT> .*
//! ```

use crate::wrapper::{Wrapper, WrapperError};
use rextract_automata::Alphabet;
use rextract_extraction::extract::Extractor;
use rextract_extraction::ExtractionExpr;
use rextract_html::seq::SeqConfig;
use std::fmt;

/// The artifact format version this build reads and writes. Bumped on any
/// incompatible change to the serialization; [`Wrapper::import`] rejects
/// other versions loudly (see [`PersistError::VersionMismatch`]) so a
/// registry hot-reload over a directory of stale artifacts fails with a
/// clear diagnosis instead of misparsing.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from [`Wrapper::import`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong header line (not a rextract-wrapper artifact at all).
    BadHeader,
    /// A rextract-wrapper artifact, but in a format version this build
    /// does not read.
    VersionMismatch {
        /// The version the artifact declares.
        found: u32,
    },
    /// A required section is missing or malformed; carries the line tag.
    BadSection(&'static str),
    /// The stored expression failed to parse.
    Expr(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "not a rextract-wrapper artifact"),
            PersistError::VersionMismatch { found } => write!(
                f,
                "artifact is format v{found}, but this build reads v{FORMAT_VERSION}; \
                 re-export the wrapper with a matching release"
            ),
            PersistError::BadSection(s) => write!(f, "missing or malformed section {s:?}"),
            PersistError::Expr(e) => write!(f, "stored expression invalid: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl Wrapper {
    /// Serialize to the current text format (see [`FORMAT_VERSION`]).
    pub fn export(&self) -> String {
        let mut out = format!("rextract-wrapper v{FORMAT_VERSION}\n");
        let cfg = self.seq_config();
        out.push_str(&format!(
            "seq include_text={} include_end_tags={}\n",
            cfg.include_text, cfg.include_end_tags
        ));
        for (tag, attr) in &cfg.refine_attrs {
            out.push_str(&format!("refine {tag} {attr}\n"));
        }
        let names: Vec<&str> = self
            .alphabet()
            .symbols()
            .map(|s| self.alphabet().name(s))
            .collect();
        out.push_str("alphabet ");
        out.push_str(&names.join(" "));
        out.push('\n');
        out.push_str(&format!("maximized {}\n", self.is_maximized()));
        out.push_str("expr ");
        out.push_str(&self.expr().to_text());
        out.push('\n');
        out
    }

    /// Deserialize from the v1 text format. The resulting wrapper skips
    /// retraining entirely (the stored expression is recompiled).
    pub fn import(text: &str) -> Result<Wrapper, PersistError> {
        let mut lines = text.lines();
        let header = lines.next().map(str::trim).unwrap_or("");
        match header.strip_prefix("rextract-wrapper v") {
            Some(v) => {
                let found: u32 = v.trim().parse().map_err(|_| PersistError::BadHeader)?;
                if found != FORMAT_VERSION {
                    return Err(PersistError::VersionMismatch { found });
                }
            }
            None => return Err(PersistError::BadHeader),
        }
        let mut seq: Option<SeqConfig> = None;
        let mut refines: Vec<(String, String)> = Vec::new();
        let mut alphabet: Option<Alphabet> = None;
        let mut expr_text: Option<String> = None;
        let mut maximized = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            match tag {
                "seq" => {
                    let mut include_text = None;
                    let mut include_end_tags = None;
                    for kv in rest.split_whitespace() {
                        match kv.split_once('=') {
                            Some(("include_text", v)) => include_text = v.parse().ok(),
                            Some(("include_end_tags", v)) => include_end_tags = v.parse().ok(),
                            _ => return Err(PersistError::BadSection("seq")),
                        }
                    }
                    seq = Some(SeqConfig {
                        include_text: include_text.ok_or(PersistError::BadSection("seq"))?,
                        include_end_tags: include_end_tags
                            .ok_or(PersistError::BadSection("seq"))?,
                        refine_attrs: Vec::new(),
                    });
                }
                "refine" => {
                    let mut it = rest.split_whitespace();
                    match (it.next(), it.next()) {
                        (Some(t), Some(a)) => refines.push((t.to_string(), a.to_string())),
                        _ => return Err(PersistError::BadSection("refine")),
                    }
                }
                "alphabet" => {
                    alphabet = Some(Alphabet::new(rest.split_whitespace().map(String::from)));
                }
                "maximized" => {
                    maximized = rest
                        .trim()
                        .parse()
                        .map_err(|_| PersistError::BadSection("maximized"))?;
                }
                "expr" => expr_text = Some(rest.to_string()),
                _ => return Err(PersistError::BadSection("unknown")),
            }
        }
        let mut seq = seq.ok_or(PersistError::BadSection("seq"))?;
        seq.refine_attrs = refines;
        let alphabet = alphabet.ok_or(PersistError::BadSection("alphabet"))?;
        let expr_text = expr_text.ok_or(PersistError::BadSection("expr"))?;
        let expr = ExtractionExpr::parse(&alphabet, &expr_text)
            .map_err(|e| PersistError::Expr(e.to_string()))?;
        let extractor = Extractor::compile(&expr);
        Ok(Wrapper::from_parts(
            alphabet, expr, extractor, seq, maximized,
        ))
    }
}

/// Re-exported for error matching convenience.
impl From<PersistError> for WrapperError {
    fn from(e: PersistError) -> WrapperError {
        WrapperError::Learn(rextract_learn::LearnError::UnknownSymbol(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{PageStyle, SiteConfig, SiteGenerator};
    use crate::wrapper::{TrainPage, WrapperConfig};

    fn trained() -> (Wrapper, SiteGenerator) {
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 12,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        (Wrapper::train(&pages, WrapperConfig::default()).unwrap(), g)
    }

    #[test]
    fn export_import_round_trip_preserves_behaviour() {
        let (w, mut g) = trained();
        let artifact = w.export();
        let w2 = Wrapper::import(&artifact).expect("import succeeds");
        // Same expression, same extractions on fresh pages.
        assert!(w.expr().same_extraction(w2.expr()));
        for _ in 0..10 {
            let p = g.page();
            assert_eq!(
                w.extract_target(&p.tokens).ok(),
                w2.extract_target(&p.tokens).ok()
            );
        }
    }

    #[test]
    fn artifact_is_human_readable() {
        let (w, _) = trained();
        let artifact = w.export();
        assert!(artifact.starts_with("rextract-wrapper v1\n"));
        assert!(artifact.contains("alphabet "));
        assert!(artifact.contains("expr "));
        assert!(artifact.contains("<INPUT>"), "{artifact}");
    }

    #[test]
    fn maximized_flag_round_trips() {
        let (w, _) = trained();
        assert!(w.is_maximized());
        let w2 = Wrapper::import(&w.export()).unwrap();
        assert!(w2.is_maximized());
    }

    #[test]
    fn version_mismatch_fails_loudly() {
        let (w, _) = trained();
        // Rewrite the header to a future version: same payload, wrong v.
        let artifact = w.export().replacen("v1", "v2", 1);
        let err = Wrapper::import(&artifact).unwrap_err();
        assert_eq!(err, PersistError::VersionMismatch { found: 2 });
        let msg = err.to_string();
        assert!(msg.contains("v2") && msg.contains("v1"), "{msg}");
        // A garbled version number is a bad header, not a panic.
        assert!(matches!(
            Wrapper::import("rextract-wrapper vX\n"),
            Err(PersistError::BadHeader)
        ));
    }

    #[test]
    fn import_error_cases() {
        assert!(matches!(
            Wrapper::import("nope"),
            Err(PersistError::BadHeader)
        ));
        assert!(matches!(Wrapper::import(""), Err(PersistError::BadHeader)));
        assert!(matches!(
            Wrapper::import("rextract-wrapper v1\nexpr <p>"),
            Err(PersistError::BadSection(_))
        ));
        assert!(matches!(
            Wrapper::import(
                "rextract-wrapper v1\nseq include_text=false include_end_tags=true\nalphabet p q\nexpr <zz>"
            ),
            Err(PersistError::Expr(_))
        ));
        assert!(matches!(
            Wrapper::import(
                "rextract-wrapper v1\nseq include_text=false include_end_tags=true\nalphabet p q\nbogus x"
            ),
            Err(PersistError::BadSection("unknown"))
        ));
    }

    #[test]
    fn refine_attrs_round_trip() {
        // Build a wrapper with attribute refinement and check the config
        // survives.
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 31,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        let cfg = WrapperConfig {
            seq: SeqConfig::tags_only().refine("input", "type"),
            maximize: true,
        };
        let w = Wrapper::train(&pages, cfg).unwrap();
        let w2 = Wrapper::import(&w.export()).unwrap();
        assert_eq!(w.seq_config(), w2.seq_config());
        let p = g.page();
        assert_eq!(
            w.extract_target(&p.tokens).ok(),
            w2.extract_target(&p.tokens).ok()
        );
    }
}
