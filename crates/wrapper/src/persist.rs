//! Wrapper persistence: export a trained wrapper as a small text artifact
//! and re-import it later.
//!
//! Training is the expensive step (merging + maximization); a production
//! shopbot trains once per site and ships the wrapper. The format is
//! line-oriented and human-auditable — the expression is stored in the
//! same `E1 <p> E2` syntax the rest of the toolkit reads, so an exported
//! wrapper can be inspected with `rextract analyze`:
//!
//! ```text
//! rextract-wrapper v2
//! seq include_text=false include_end_tags=true
//! alphabet #other /FORM /H1 FORM H1 INPUT P
//! maximized true
//! expr [^FORM]* FORM [^INPUT]* INPUT [^INPUT]* <INPUT> .*
//! checksum fnv1a 9c2f31a07b6d5e48
//! ```
//!
//! # Crash safety
//!
//! The artifact ends in a fixed-width FNV-1a checksum trailer covering
//! every byte before it. [`Wrapper::import`] verifies the trailer before
//! parsing any section, so a torn write (power loss mid-`write`) is
//! diagnosed as [`PersistError::Truncated`] and a bit-flip as
//! [`PersistError::Corrupt`] — never misparsed into a silently-wrong
//! wrapper. The writing side, [`save_artifact`], never exposes a partial
//! file at the destination path: it writes a hidden temp file in the same
//! directory, fsyncs it, and atomically renames it into place.

use crate::tuple::TupleWrapper;
use crate::wrapper::{Wrapper, WrapperError};
use rextract_automata::Alphabet;
use rextract_extraction::extract::Extractor;
use rextract_extraction::{ExtractionExpr, MultiExtractionExpr};
use rextract_faults::fail_point;
use rextract_html::seq::SeqConfig;
use std::fmt;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The artifact format version this build reads and writes. Bumped on any
/// incompatible change to the serialization; [`Wrapper::import`] rejects
/// other versions loudly (see [`PersistError::VersionMismatch`]) so a
/// registry hot-reload over a directory of stale artifacts fails with a
/// clear diagnosis instead of misparsing. v2 added the checksum trailer.
pub const FORMAT_VERSION: u32 = 2;

/// Errors from [`Wrapper::import`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Missing or wrong header line (not a rextract-wrapper artifact at all).
    BadHeader,
    /// A rextract-wrapper artifact, but in a format version this build
    /// does not read.
    VersionMismatch {
        /// The version the artifact declares.
        found: u32,
    },
    /// The checksum trailer is missing or incomplete: the artifact was
    /// cut short, classically by a torn (non-atomic) write.
    Truncated,
    /// The checksum trailer is present but does not match the content:
    /// the artifact was altered after export.
    Corrupt {
        /// The checksum the trailer declares.
        expected: u64,
        /// The checksum computed over the artifact body.
        found: u64,
    },
    /// A required section is missing or malformed; carries the line tag.
    BadSection(&'static str),
    /// The stored expression failed to parse.
    Expr(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "not a rextract-wrapper artifact"),
            PersistError::VersionMismatch { found } => write!(
                f,
                "artifact is format v{found}, but this build reads v{FORMAT_VERSION}; \
                 re-export the wrapper with a matching release"
            ),
            PersistError::Truncated => write!(
                f,
                "artifact truncated: checksum trailer missing or incomplete (torn write?)"
            ),
            PersistError::Corrupt { expected, found } => write!(
                f,
                "artifact corrupt: checksum mismatch (trailer {expected:016x}, content {found:016x})"
            ),
            PersistError::BadSection(s) => write!(f, "missing or malformed section {s:?}"),
            PersistError::Expr(e) => write!(f, "stored expression invalid: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Errors from [`Wrapper::load`]: either the file could not be read or
/// its contents failed to import.
#[derive(Debug)]
pub enum LoadError {
    /// Reading the file failed.
    Io(io::Error),
    /// The file was read but is not a valid artifact.
    Persist(PersistError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "reading artifact: {e}"),
            LoadError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// FNV-1a 64-bit hash — the artifact trailer's checksum function. Public
/// so tests and tooling can craft or verify trailers by hand.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Split an artifact into (checksummed region, stored checksum).
///
/// The trailer is the first line whose tag is `checksum`; it must read
/// `checksum fnv1a <16 hex digits>` and nothing but whitespace may follow
/// it. A missing or half-written trailer is [`PersistError::Truncated`];
/// content after the trailer (including a `checksum` tag inside the body)
/// is `BadSection("checksum")`.
fn split_checksum(text: &str) -> Result<(&str, u64), PersistError> {
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let start = offset;
        offset += line.len();
        let trimmed = line.trim();
        let (tag, rest) = trimmed.split_once(' ').unwrap_or((trimmed, ""));
        if tag != "checksum" {
            continue;
        }
        let mut it = rest.split_whitespace();
        let (algo, hex, extra) = (it.next(), it.next(), it.next());
        let well_formed = algo == Some("fnv1a")
            && extra.is_none()
            && hex.is_some_and(|h| h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()));
        let Some(hex) = hex.filter(|_| well_formed) else {
            return Err(PersistError::Truncated);
        };
        if !text[offset..].trim().is_empty() {
            return Err(PersistError::BadSection("checksum"));
        }
        let stored = u64::from_str_radix(hex, 16).expect("validated hex");
        return Ok((&text[..start], stored));
    }
    Err(PersistError::Truncated)
}

/// Artifact kind tags — the word after `rextract-` in the header line.
/// Single-target and tuple wrappers share the body format; the header
/// keeps a registry scan from compiling a tuple expression as a
/// single-marker one (or vice versa).
const KIND_SINGLE: &str = "wrapper";
const KIND_TUPLE: &str = "tuple-wrapper";

/// The shared body sections of both artifact kinds, parsed but not yet
/// compiled (the expression text is interpreted per kind).
struct ArtifactBody {
    seq: SeqConfig,
    alphabet: Alphabet,
    maximized: bool,
    expr_text: String,
}

/// Render the shared artifact layout: header, sections, checksum trailer.
fn render_artifact(
    kind: &str,
    cfg: &SeqConfig,
    alphabet: &Alphabet,
    maximized: bool,
    expr_text: &str,
) -> String {
    let mut out = format!("rextract-{kind} v{FORMAT_VERSION}\n");
    out.push_str(&format!(
        "seq include_text={} include_end_tags={}\n",
        cfg.include_text, cfg.include_end_tags
    ));
    for (tag, attr) in &cfg.refine_attrs {
        out.push_str(&format!("refine {tag} {attr}\n"));
    }
    let names: Vec<&str> = alphabet.symbols().map(|s| alphabet.name(s)).collect();
    out.push_str("alphabet ");
    out.push_str(&names.join(" "));
    out.push('\n');
    out.push_str(&format!("maximized {maximized}\n"));
    out.push_str("expr ");
    out.push_str(expr_text);
    out.push('\n');
    let sum = fnv1a_64(out.as_bytes());
    out.push_str(&format!("checksum fnv1a {sum:016x}\n"));
    out
}

/// Validate header + checksum and parse the shared sections.
///
/// The checksum trailer is verified before any section is parsed, so an
/// artifact cut short at *any* byte offset reports
/// [`PersistError::Truncated`] (or `BadHeader` if the cut falls inside the
/// first line) rather than importing a silently different wrapper.
fn parse_artifact(text: &str, kind: &str) -> Result<ArtifactBody, PersistError> {
    // Header first: version diagnosis beats checksum diagnosis, so a
    // stale v1 artifact reports VersionMismatch, not Truncated.
    let header_end = text.find('\n').unwrap_or(text.len());
    let header = text[..header_end].trim();
    let prefix = format!("rextract-{kind} v");
    match header.strip_prefix(&prefix) {
        Some(v) => {
            let found: u32 = v.trim().parse().map_err(|_| PersistError::BadHeader)?;
            if found != FORMAT_VERSION {
                return Err(PersistError::VersionMismatch { found });
            }
        }
        None => return Err(PersistError::BadHeader),
    }
    let (covered, stored) = split_checksum(text)?;
    let found = fnv1a_64(covered.as_bytes());
    if found != stored {
        return Err(PersistError::Corrupt {
            expected: stored,
            found,
        });
    }
    let mut lines = covered.lines();
    lines.next(); // header, validated above
    let mut seq: Option<SeqConfig> = None;
    let mut refines: Vec<(String, String)> = Vec::new();
    let mut alphabet: Option<Alphabet> = None;
    let mut expr_text: Option<String> = None;
    let mut maximized = false;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "seq" => {
                let mut include_text = None;
                let mut include_end_tags = None;
                for kv in rest.split_whitespace() {
                    match kv.split_once('=') {
                        Some(("include_text", v)) => include_text = v.parse().ok(),
                        Some(("include_end_tags", v)) => include_end_tags = v.parse().ok(),
                        _ => return Err(PersistError::BadSection("seq")),
                    }
                }
                seq = Some(SeqConfig {
                    include_text: include_text.ok_or(PersistError::BadSection("seq"))?,
                    include_end_tags: include_end_tags.ok_or(PersistError::BadSection("seq"))?,
                    refine_attrs: Vec::new(),
                });
            }
            "refine" => {
                let mut it = rest.split_whitespace();
                match (it.next(), it.next()) {
                    (Some(t), Some(a)) => refines.push((t.to_string(), a.to_string())),
                    _ => return Err(PersistError::BadSection("refine")),
                }
            }
            "alphabet" => {
                alphabet = Some(Alphabet::new(rest.split_whitespace().map(String::from)));
            }
            "maximized" => {
                maximized = rest
                    .trim()
                    .parse()
                    .map_err(|_| PersistError::BadSection("maximized"))?;
            }
            "expr" => expr_text = Some(rest.to_string()),
            _ => return Err(PersistError::BadSection("unknown")),
        }
    }
    let mut seq = seq.ok_or(PersistError::BadSection("seq"))?;
    seq.refine_attrs = refines;
    Ok(ArtifactBody {
        seq,
        alphabet: alphabet.ok_or(PersistError::BadSection("alphabet"))?,
        maximized,
        expr_text: expr_text.ok_or(PersistError::BadSection("expr"))?,
    })
}

impl Wrapper {
    /// Serialize to the current text format (see [`FORMAT_VERSION`]).
    pub fn export(&self) -> String {
        render_artifact(
            KIND_SINGLE,
            self.seq_config(),
            self.alphabet(),
            self.is_maximized(),
            &self.expr().to_text(),
        )
    }

    /// Deserialize from the v2 text format. The resulting wrapper skips
    /// retraining entirely (the stored expression is recompiled). See
    /// [`parse_artifact`] for the torn-write guarantees.
    pub fn import(text: &str) -> Result<Wrapper, PersistError> {
        let body = parse_artifact(text, KIND_SINGLE)?;
        let expr = ExtractionExpr::parse(&body.alphabet, &body.expr_text)
            .map_err(|e| PersistError::Expr(e.to_string()))?;
        let extractor = Extractor::compile(&expr);
        Ok(Wrapper::from_parts(
            body.alphabet,
            expr,
            extractor,
            body.seq,
            body.maximized,
            FORMAT_VERSION,
        ))
    }

    /// Atomically persist the exported artifact at `path` via
    /// [`save_artifact`].
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_artifact(path, &self.export())
    }

    /// Read and import an artifact from `path`.
    pub fn load(path: &Path) -> Result<Wrapper, LoadError> {
        let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
        Wrapper::import(&text).map_err(LoadError::Persist)
    }
}

impl TupleWrapper {
    /// Serialize to the tuple-wrapper text format: the same v2 layout as
    /// [`Wrapper::export`] with an `rextract-tuple-wrapper` header and a
    /// multi-marker `expr` line, so the two kinds can never be confused
    /// by a directory scan.
    pub fn export(&self) -> String {
        render_artifact(
            KIND_TUPLE,
            self.seq_config(),
            self.alphabet(),
            self.is_maximized(),
            &self.expr().to_text(),
        )
    }

    /// Deserialize a tuple-wrapper artifact (the stored multi-marker
    /// expression is recompiled; training is bypassed). Same torn-write
    /// guarantees as [`Wrapper::import`].
    pub fn import(text: &str) -> Result<TupleWrapper, PersistError> {
        let body = parse_artifact(text, KIND_TUPLE)?;
        let expr = MultiExtractionExpr::parse(&body.alphabet, &body.expr_text)
            .map_err(|e| PersistError::Expr(e.to_string()))?;
        let extractor = expr.compile();
        Ok(TupleWrapper::from_parts(
            body.alphabet,
            expr,
            extractor,
            body.seq,
            body.maximized,
        ))
    }

    /// Atomically persist the exported artifact at `path` via
    /// [`save_artifact`].
    pub fn save(&self, path: &Path) -> io::Result<()> {
        save_artifact(path, &self.export())
    }

    /// Read and import a tuple-wrapper artifact from `path`.
    pub fn load(path: &Path) -> Result<TupleWrapper, LoadError> {
        let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
        TupleWrapper::import(&text).map_err(LoadError::Persist)
    }
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` so that `path` only ever holds either its
/// previous content or the complete new content — never a torn prefix.
///
/// The sequence is: write a hidden `.{name}.{pid}.{seq}.tmp` file in the
/// same directory, `sync_all` it, rename it over `path`, then (on unix)
/// fsync the directory so the rename itself is durable. A crash at any
/// point leaves at worst a stray temp file, which directory scans ignore.
///
/// Failpoints (live only with the `failpoints` feature):
/// `persist.write.error`, `persist.write.partial` (leaves the torn temp
/// file behind, simulating a crash mid-write), `persist.rename.error`.
pub fn save_artifact(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "save_artifact: path has no file name",
        )
    })?;
    let dir: PathBuf = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        file_name.to_string_lossy(),
        std::process::id(),
        seq
    ));
    if let Err((e, keep_tmp)) = write_tmp(&tmp, contents.as_bytes()) {
        if !keep_tmp {
            let _ = std::fs::remove_file(&tmp);
        }
        return Err(e);
    }
    if let Err(e) = rename_into_place(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    sync_dir(&dir);
    Ok(())
}

/// Create the temp file, write everything, and fsync. The error side
/// carries `keep_tmp`: the torn-write failpoint leaves its partial temp
/// file on disk (that is the crash it simulates), real errors clean up.
fn write_tmp(tmp: &Path, bytes: &[u8]) -> Result<(), (io::Error, bool)> {
    let mut f = std::fs::File::create(tmp).map_err(|e| (e, false))?;
    fail_point!("persist.write.error", |_action| Err((
        io::Error::other("injected write error (failpoint persist.write.error)"),
        false,
    )));
    fail_point!("persist.write.partial", |action| {
        let n = match action {
            rextract_faults::Action::PartialIo(n) => n,
            _ => 0,
        };
        let cut = n.min(bytes.len());
        let res = f.write_all(&bytes[..cut]).and_then(|()| f.sync_all());
        Err((
            res.err().unwrap_or_else(|| {
                io::Error::other("injected torn write (failpoint persist.write.partial)")
            }),
            true,
        ))
    });
    f.write_all(bytes).map_err(|e| (e, false))?;
    f.sync_all().map_err(|e| (e, false))?;
    Ok(())
}

fn rename_into_place(tmp: &Path, path: &Path) -> io::Result<()> {
    fail_point!("persist.rename.error", |_action| Err(io::Error::other(
        "injected rename error (failpoint persist.rename.error)"
    )));
    std::fs::rename(tmp, path)
}

/// Best effort: a failure here cannot corrupt the artifact, only delay
/// the rename's durability, so it is not propagated.
#[cfg(unix)]
fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) {}

/// Re-exported for error matching convenience.
impl From<PersistError> for WrapperError {
    fn from(e: PersistError) -> WrapperError {
        WrapperError::Learn(rextract_learn::LearnError::UnknownSymbol(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{PageStyle, SiteConfig, SiteGenerator};
    use crate::wrapper::{TrainPage, WrapperConfig};

    fn trained() -> (Wrapper, SiteGenerator) {
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 12,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        (Wrapper::train(&pages, WrapperConfig::default()).unwrap(), g)
    }

    /// Append a valid trailer to a hand-written body.
    fn with_checksum(body: &str) -> String {
        let mut s = body.to_string();
        if !s.ends_with('\n') {
            s.push('\n');
        }
        let sum = fnv1a_64(s.as_bytes());
        s.push_str(&format!("checksum fnv1a {sum:016x}\n"));
        s
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rextract-persist-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn export_import_round_trip_preserves_behaviour() {
        let (w, mut g) = trained();
        let artifact = w.export();
        let w2 = Wrapper::import(&artifact).expect("import succeeds");
        // Same expression, same extractions on fresh pages.
        assert!(w.expr().same_extraction(w2.expr()));
        for _ in 0..10 {
            let p = g.page();
            assert_eq!(
                w.extract_target(&p.tokens).ok(),
                w2.extract_target(&p.tokens).ok()
            );
        }
    }

    #[test]
    fn artifact_is_human_readable() {
        let (w, _) = trained();
        let artifact = w.export();
        assert!(artifact.starts_with("rextract-wrapper v2\n"));
        assert!(artifact.contains("alphabet "));
        assert!(artifact.contains("expr "));
        assert!(artifact.contains("<INPUT>"), "{artifact}");
        // Trailer is the last line, fixed width.
        let last = artifact.lines().last().unwrap();
        assert!(last.starts_with("checksum fnv1a "), "{last}");
        assert_eq!(last.len(), "checksum fnv1a ".len() + 16, "{last}");
    }

    #[test]
    fn maximized_flag_round_trips() {
        let (w, _) = trained();
        assert!(w.is_maximized());
        let w2 = Wrapper::import(&w.export()).unwrap();
        assert!(w2.is_maximized());
    }

    #[test]
    fn version_mismatch_fails_loudly() {
        let (w, _) = trained();
        // Rewrite the header to a future version: same payload, wrong v.
        // The version diagnosis must win over the (now stale) checksum.
        let artifact = w.export().replacen("v2", "v3", 1);
        let err = Wrapper::import(&artifact).unwrap_err();
        assert_eq!(err, PersistError::VersionMismatch { found: 3 });
        let msg = err.to_string();
        assert!(msg.contains("v3") && msg.contains("v2"), "{msg}");
        // A garbled version number is a bad header, not a panic.
        assert!(matches!(
            Wrapper::import("rextract-wrapper vX\n"),
            Err(PersistError::BadHeader)
        ));
    }

    #[test]
    fn truncation_and_corruption_are_diagnosed() {
        let (w, _) = trained();
        let artifact = w.export();

        // Checksum trailer missing entirely.
        let body_only = artifact
            .lines()
            .filter(|l| !l.starts_with("checksum"))
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        assert_eq!(
            Wrapper::import(&body_only).unwrap_err(),
            PersistError::Truncated
        );

        // Trailer chopped mid-hex.
        let chopped = &artifact[..artifact.len() - 5];
        assert_eq!(
            Wrapper::import(chopped).unwrap_err(),
            PersistError::Truncated
        );

        // A flipped bit in the body is caught by the trailer.
        let tampered = artifact.replacen("maximized true", "maximized talse", 1);
        assert_ne!(tampered, artifact, "tamper target must exist");
        assert!(matches!(
            Wrapper::import(&tampered).unwrap_err(),
            PersistError::Corrupt { .. }
        ));

        // A tampered trailer is equally corrupt.
        let sum_start = artifact.rfind(' ').unwrap() + 1;
        let mut bad_sum = artifact.clone();
        let digit = if &artifact[sum_start..sum_start + 1] == "0" {
            "1"
        } else {
            "0"
        };
        bad_sum.replace_range(sum_start..sum_start + 1, digit);
        assert!(matches!(
            Wrapper::import(&bad_sum).unwrap_err(),
            PersistError::Corrupt { .. }
        ));

        // Content after the trailer is rejected, not silently ignored.
        let appended = format!("{artifact}alphabet p q\n");
        assert_eq!(
            Wrapper::import(&appended).unwrap_err(),
            PersistError::BadSection("checksum")
        );

        // Losing only the final newline changes nothing the trailer covers.
        let no_newline = artifact.trim_end();
        assert!(Wrapper::import(no_newline).is_ok());
    }

    #[test]
    fn import_error_cases() {
        assert!(matches!(
            Wrapper::import("nope"),
            Err(PersistError::BadHeader)
        ));
        assert!(matches!(Wrapper::import(""), Err(PersistError::BadHeader)));
        assert!(matches!(
            Wrapper::import(&with_checksum("rextract-wrapper v2\nexpr <p>")),
            Err(PersistError::BadSection(_))
        ));
        assert!(matches!(
            Wrapper::import(&with_checksum(
                "rextract-wrapper v2\nseq include_text=false include_end_tags=true\nalphabet p q\nexpr <zz>"
            )),
            Err(PersistError::Expr(_))
        ));
        assert!(matches!(
            Wrapper::import(&with_checksum(
                "rextract-wrapper v2\nseq include_text=false include_end_tags=true\nalphabet p q\nbogus x"
            )),
            Err(PersistError::BadSection("unknown"))
        ));
    }

    #[test]
    fn refine_attrs_round_trip() {
        // Build a wrapper with attribute refinement and check the config
        // survives.
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 31,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        let cfg = WrapperConfig {
            seq: SeqConfig::tags_only().refine("input", "type"),
            maximize: true,
        };
        let w = Wrapper::train(&pages, cfg).unwrap();
        let w2 = Wrapper::import(&w.export()).unwrap();
        assert_eq!(w.seq_config(), w2.seq_config());
        let p = g.page();
        assert_eq!(
            w.extract_target(&p.tokens).ok(),
            w2.extract_target(&p.tokens).ok()
        );
    }

    #[test]
    fn tuple_wrapper_round_trips_and_kinds_do_not_cross() {
        use crate::tuple::{MultiTrainPage, TupleWrapper};
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 23,
            ..SiteConfig::default()
        });
        let multi = |p: &crate::site::Page| {
            let form = p
                .tokens
                .iter()
                .position(|t| t.tag_name() == Some("FORM"))
                .unwrap();
            MultiTrainPage {
                tokens: p.tokens.clone(),
                targets: vec![form, p.target],
            }
        };
        let pages = vec![
            multi(&g.page_with_style(PageStyle::Plain)),
            multi(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        let tw = TupleWrapper::train(&pages, WrapperConfig::default()).unwrap();
        let artifact = tw.export();
        assert!(artifact.starts_with("rextract-tuple-wrapper v2\n"));
        let tw2 = TupleWrapper::import(&artifact).expect("import succeeds");
        assert_eq!(tw2.arity(), 2);
        assert_eq!(tw2.is_maximized(), tw.is_maximized());
        for p in &pages {
            assert_eq!(
                tw.extract_targets(&p.tokens).ok(),
                tw2.extract_targets(&p.tokens).ok()
            );
        }
        // A tuple artifact is not a single-target artifact and vice versa.
        assert_eq!(
            Wrapper::import(&artifact).unwrap_err(),
            PersistError::BadHeader
        );
        let (single, _) = trained();
        assert_eq!(
            TupleWrapper::import(&single.export()).unwrap_err(),
            PersistError::BadHeader
        );
        // Save/load through the atomic writer.
        let dir = scratch_dir("tuple");
        let path = dir.join("record.tuple-wrapper");
        tw.save(&path).unwrap();
        let tw3 = TupleWrapper::load(&path).unwrap();
        assert_eq!(
            tw.extract_targets(&pages[0].tokens).ok(),
            tw3.extract_targets(&pages[0].tokens).ok()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_droppings() {
        let dir = scratch_dir("atomic");
        let (w, _) = trained();
        let path = dir.join("site.wrapper");
        w.save(&path).unwrap();
        let w2 = Wrapper::load(&path).unwrap();
        assert!(w.expr().same_extraction(w2.expr()));
        // Overwrite in place works and no temp files remain.
        w.save(&path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_distinguishes_io_from_format_errors() {
        let dir = scratch_dir("load");
        match Wrapper::load(&dir.join("absent.wrapper")) {
            Err(LoadError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::write(dir.join("junk.wrapper"), "not an artifact").unwrap();
        assert!(matches!(
            Wrapper::load(&dir.join("junk.wrapper")),
            Err(LoadError::Persist(PersistError::BadHeader))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Failpoint-driven crash simulations. These share the process-global
    /// failpoint registry, so they serialize on one mutex.
    #[cfg(feature = "failpoints")]
    mod crash {
        use super::*;
        use rextract_faults as faults;
        use std::sync::{Mutex, MutexGuard, OnceLock};

        fn serial() -> MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            match LOCK.get_or_init(|| Mutex::new(())).lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        #[test]
        fn torn_write_never_reaches_the_destination() {
            let _guard = serial();
            faults::clear_all();
            let dir = scratch_dir("torn");
            let (w, _) = trained();
            let path = dir.join("site.wrapper");
            w.save(&path).unwrap();
            let before = std::fs::read_to_string(&path).unwrap();

            // Crash after 20 bytes of the rewrite: the destination must
            // still hold the previous, fully-valid artifact.
            faults::configure_spec("persist.write.partial=once:partial(20)").unwrap();
            let err = w.save(&path).unwrap_err();
            assert!(err.to_string().contains("torn write"), "{err}");
            assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
            // The torn temp file is on disk (that is the simulated crash
            // residue) and is itself unimportable.
            let torn: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
                .collect();
            assert_eq!(torn.len(), 1, "{torn:?}");
            let residue = std::fs::read_to_string(torn[0].path()).unwrap();
            assert_eq!(residue.len(), 20);
            assert!(Wrapper::import(&residue).is_err());

            faults::clear_all();
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn write_and_rename_errors_preserve_the_old_artifact() {
            let _guard = serial();
            faults::clear_all();
            let dir = scratch_dir("rename");
            let (w, _) = trained();
            let path = dir.join("site.wrapper");
            w.save(&path).unwrap();
            let before = std::fs::read_to_string(&path).unwrap();

            faults::configure_spec("persist.write.error=once:return").unwrap();
            assert!(w.save(&path).is_err());
            faults::configure_spec("persist.rename.error=once:return").unwrap();
            assert!(w.save(&path).is_err());

            assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
            // Non-torn failures clean up their temp files.
            let leftovers: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
                .collect();
            assert!(leftovers.is_empty(), "{leftovers:?}");

            faults::clear_all();
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
