//! # rextract-wrapper
//!
//! The end-to-end resilient wrapper the paper's "web-based information
//! harvesting system" needed (Sections 1, 3 and 7), assembled from the
//! other crates:
//!
//! ```text
//! sample pages + marked target
//!         │  (html: tokenize + abstract)
//!         ▼
//! marked tag sequences ──(learn: merge heuristic)──► pivot expression
//!         │                                              │
//!         │                        (extraction: pivot maximization)
//!         ▼                                              ▼
//!   initial wrapper                              resilient wrapper
//! ```
//!
//! * [`wrapper`] — the [`wrapper::Wrapper`] train/extract API,
//! * [`site`] — a synthetic catalog-site generator standing in for the
//!   paper's live vendor pages (see DESIGN.md, substitutions),
//! * [`report`] — the resilience experiment harness (paper's "preliminary
//!   experiments" claim, experiment E5).

pub mod locator;
pub mod persist;
pub mod query;
pub mod report;
pub mod site;
pub mod tuple;
pub mod wrapper;

pub use locator::{LrLocator, TargetLocator};
pub use query::{evaluate_query, evaluate_query_with, QueryEvalError};
pub use site::{PageStyle, SiteConfig, SiteGenerator};
pub use tuple::{MultiTrainPage, TupleWrapper};
pub use wrapper::{TrainPage, Wrapper, WrapperConfig, WrapperError, WrapperScratch};
