//! Query evaluation: span-relational queries over live pages.
//!
//! A [`QueryDef`] names its inputs — installed wrappers or inline
//! extraction expressions — and an algebra plan (π/∪/⋈) over them. This
//! module grounds those inputs against one tokenized page: every source
//! becomes a [`SpanRelation`] in **token-index** space, and the plan
//! evaluates to the joined result. A wrapper source contributes *all*
//! candidate positions (no uniqueness demanded — the join is the
//! disambiguating step); an expression source compiles on the fly over
//! its own alphabet and the plain tags-only abstraction.

use crate::wrapper::{abstract_page_into, Wrapper, WrapperScratch, OTHER};
use rextract_automata::Alphabet;
use rextract_extraction::{
    AlgebraError, ExtractionExpr, Extractor, JoinStrategy, QueryDef, SourceKind, Span, SpanRelation,
};
use rextract_html::seq::SeqConfig;
use rextract_html::token::Token;
use std::collections::HashMap;
use std::sync::Arc;

/// Why a query could not be evaluated against a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryEvalError {
    /// A wrapper source names a wrapper that is not installed.
    UnknownWrapper(String),
    /// An expression source failed to parse over its alphabet.
    BadExpr {
        /// The source's variable.
        var: String,
        /// The parse error.
        error: String,
    },
    /// The plan itself failed (unknown input, predicate var, …).
    Algebra(AlgebraError),
}

impl std::fmt::Display for QueryEvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryEvalError::UnknownWrapper(name) => write!(f, "unknown wrapper {name:?}"),
            QueryEvalError::BadExpr { var, error } => {
                write!(f, "source {var:?}: bad expression: {error}")
            }
            QueryEvalError::Algebra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryEvalError {}

/// Ground every source of `def` against `tokens` and evaluate the plan
/// under `strategy`. `lookup` resolves wrapper sources by name (the
/// daemon passes its registry; the CLI a loaded file set). The result
/// relation is in token-index space, canonical (rows sorted, deduped) —
/// so two strategies evaluating the same query render byte-identically.
///
/// Allocating convenience wrapper over [`evaluate_query_with`]: builds a
/// fresh [`WrapperScratch`] per call. Repeated evaluation (the daemon's
/// `POST /query`, `rextract query` over a page set) should hold one
/// scratch and call [`evaluate_query_with`] instead.
pub fn evaluate_query(
    def: &QueryDef,
    tokens: &[Token],
    lookup: &dyn Fn(&str) -> Option<Arc<Wrapper>>,
    strategy: JoinStrategy,
) -> Result<SpanRelation, QueryEvalError> {
    evaluate_query_with(def, tokens, lookup, strategy, &mut WrapperScratch::new())
}

/// [`evaluate_query`] with a caller-owned scratch: page abstraction, the
/// tag memo, and every extractor scan reuse `scratch`'s buffers, so
/// steady-state evaluation of wrapper sources stays off the allocator
/// (inline-expression sources still compile per call by design — they
/// are ad-hoc by nature; the relation building also allocates).
pub fn evaluate_query_with(
    def: &QueryDef,
    tokens: &[Token],
    lookup: &dyn Fn(&str) -> Option<Arc<Wrapper>>,
    strategy: JoinStrategy,
    scratch: &mut WrapperScratch,
) -> Result<SpanRelation, QueryEvalError> {
    let mut inputs: HashMap<String, SpanRelation> = HashMap::new();
    for src in &def.sources {
        let rel = match &src.kind {
            SourceKind::Wrapper(name) => {
                let w = lookup(name).ok_or_else(|| QueryEvalError::UnknownWrapper(name.clone()))?;
                w.span_relation_with(src.var.clone(), tokens, scratch)
            }
            SourceKind::Expr { alphabet, expr } => {
                expr_relation(&src.var, alphabet, expr, tokens, scratch)?
            }
        };
        inputs.insert(src.var.clone(), rel);
    }
    def.plan
        .eval_with(&inputs, strategy)
        .map_err(QueryEvalError::Algebra)
}

/// Ground one inline-expression source: build its alphabet (always
/// closed with `#other`), parse and compile the expression, abstract the
/// page tags-only, scan, and map every match back to token indices.
fn expr_relation(
    var: &str,
    alphabet_names: &str,
    expr_text: &str,
    tokens: &[Token],
    scratch: &mut WrapperScratch,
) -> Result<SpanRelation, QueryEvalError> {
    let mut names: Vec<&str> = alphabet_names.split_whitespace().collect();
    names.sort_unstable();
    names.dedup();
    if !names.contains(&OTHER) {
        names.push(OTHER);
    }
    let alphabet = Alphabet::new(names);
    let expr =
        ExtractionExpr::parse(&alphabet, expr_text).map_err(|e| QueryEvalError::BadExpr {
            var: var.to_string(),
            error: e.to_string(),
        })?;
    let extractor = Extractor::compile(&expr);
    abstract_page_into(&alphabet, &SeqConfig::tags_only(), tokens, scratch);
    let (word, back, extract, _) = scratch.tuple_parts();
    let spans = extractor.spans_into(word, extract);
    Ok(SpanRelation::unary(
        var,
        spans.iter().map(|s| Span::unit(back[s.start])),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{PageStyle, SiteConfig, SiteGenerator};
    use crate::wrapper::{TrainPage, WrapperConfig};

    fn gen(seed: u64) -> SiteGenerator {
        SiteGenerator::new(SiteConfig {
            seed,
            ..SiteConfig::default()
        })
    }

    fn trained_search(g: &mut SiteGenerator) -> Arc<Wrapper> {
        let pages: Vec<TrainPage> = [PageStyle::Plain, PageStyle::TableEmbedded]
            .iter()
            .map(|&s| TrainPage::from(&g.page_with_style(s)))
            .collect();
        Arc::new(Wrapper::train(&pages, WrapperConfig::default()).unwrap())
    }

    #[test]
    fn wrapper_and_expr_sources_join_on_order() {
        let mut g = gen(3);
        let w = trained_search(&mut g);
        // field: the installed wrapper's candidates (the INPUT).
        // form: an inline expression finding the FORM start tag, with
        // a `before` predicate tying the two in document order.
        let def = QueryDef::parse(
            r#"{
              "sources": [
                {"var": "field", "wrapper": "search"},
                {"var": "form", "alphabet": "FORM /FORM", "expr": "[^FORM]* <FORM> .*"}
              ],
              "plan": {
                "op": "join",
                "left": {"op": "leaf", "var": "form"},
                "right": {"op": "leaf", "var": "field"},
                "preds": [{"pred": "before", "left": "form", "right": "field"}]
              }
            }"#,
        )
        .unwrap();
        let lookup = move |name: &str| (name == "search").then(|| Arc::clone(&w));
        for _ in 0..5 {
            let p = g.page_with_style(PageStyle::Plain);
            let form = p
                .tokens
                .iter()
                .position(|t| t.tag_name() == Some("FORM"))
                .unwrap();
            let rel = evaluate_query(&def, &p.tokens, &lookup, JoinStrategy::SortMerge).unwrap();
            assert_eq!(rel.vars(), ["form".to_string(), "field".to_string()]);
            assert_eq!(rel.rows(), [vec![Span::unit(form), Span::unit(p.target)]]);
            // Both strategies agree byte for byte (canonical form).
            let nested =
                evaluate_query(&def, &p.tokens, &lookup, JoinStrategy::NestedLoop).unwrap();
            assert_eq!(rel.rows(), nested.rows());
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_across_pages() {
        let mut g = gen(11);
        let w = trained_search(&mut g);
        let def = QueryDef::parse(
            r#"{
              "sources": [
                {"var": "field", "wrapper": "search"},
                {"var": "form", "alphabet": "FORM /FORM", "expr": "[^FORM]* <FORM> .*"}
              ],
              "plan": {
                "op": "join",
                "left": {"op": "leaf", "var": "form"},
                "right": {"op": "leaf", "var": "field"},
                "preds": [{"pred": "before", "left": "form", "right": "field"}]
              }
            }"#,
        )
        .unwrap();
        let lookup = move |name: &str| (name == "search").then(|| Arc::clone(&w));
        // One long-lived scratch across pages of varying shape must give
        // byte-identical relations to a fresh scratch per page.
        let mut scratch = WrapperScratch::new();
        for style in [PageStyle::Plain, PageStyle::TableEmbedded, PageStyle::Plain] {
            let p = g.page_with_style(style);
            let reused = evaluate_query_with(
                &def,
                &p.tokens,
                &lookup,
                JoinStrategy::SortMerge,
                &mut scratch,
            )
            .unwrap();
            let fresh = evaluate_query(&def, &p.tokens, &lookup, JoinStrategy::SortMerge).unwrap();
            assert_eq!(reused.vars(), fresh.vars());
            assert_eq!(reused.rows(), fresh.rows());
        }
    }

    #[test]
    fn unknown_wrapper_and_bad_expr_are_reported() {
        let g = &mut gen(9);
        let p = g.page();
        let def = QueryDef::parse(
            r#"{"sources":[{"var":"x","wrapper":"ghost"}],"plan":{"op":"leaf","var":"x"}}"#,
        )
        .unwrap();
        let lookup = |_: &str| None;
        assert_eq!(
            evaluate_query(&def, &p.tokens, &lookup, JoinStrategy::SortMerge).unwrap_err(),
            QueryEvalError::UnknownWrapper("ghost".to_string())
        );
        let def = QueryDef::parse(
            r#"{"sources":[{"var":"x","alphabet":"A","expr":"((("}],"plan":{"op":"leaf","var":"x"}}"#,
        )
        .unwrap();
        match evaluate_query(&def, &p.tokens, &lookup, JoinStrategy::SortMerge) {
            Err(QueryEvalError::BadExpr { var, .. }) => assert_eq!(var, "x"),
            other => panic!("expected BadExpr, got {other:?}"),
        }
    }
}
