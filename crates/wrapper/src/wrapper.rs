//! The trainable, resilient wrapper.
//!
//! [`Wrapper::train`] runs the full pipeline of Section 7:
//! tokenize/abstract the sample pages, merge them into a pivot-form
//! extraction expression (Section 7's heuristic), optionally maximize it
//! (Algorithm 6.2 through the pivot framework), and compile a linear-time
//! extractor. [`Wrapper::extract_target`] then locates the marked object
//! on unseen page variants.
//!
//! Tags never seen in training map to a reserved `#other` symbol, so the
//! wrapper's alphabet is closed under arbitrary new content — essential
//! for resilience (a maximized `(Σ−p)*`-style context absorbs `#other`
//! tokens for free).

use crate::site::Page;
use rextract_automata::{Alphabet, Store, StoreStats, Symbol};
use rextract_extraction::extract::{ExtractFailure, ExtractScratch, Extractor};
use rextract_extraction::{ExtractionError, ExtractionExpr, Span, SpanRelation};
use rextract_html::seq::{SeqConfig, Vocabulary};
use rextract_html::token::Token;
use rextract_learn::disambiguate::learn_unambiguous;
use rextract_learn::{LearnError, MarkedSeq};
use std::fmt;

/// Reserved symbol name for tags unseen during training.
pub const OTHER: &str = "#other";

/// A training page: tokens plus the token index of the target.
#[derive(Debug, Clone)]
pub struct TrainPage {
    /// Token stream of the page.
    pub tokens: Vec<Token>,
    /// Token index of the marked target.
    pub target: usize,
}

impl From<&Page> for TrainPage {
    fn from(p: &Page) -> TrainPage {
        TrainPage {
            tokens: p.tokens.clone(),
            target: p.target,
        }
    }
}

/// Wrapper training configuration.
#[derive(Debug, Clone)]
pub struct WrapperConfig {
    /// Abstraction level for the tag-sequence representation.
    pub seq: SeqConfig,
    /// Run pivot maximization after learning (the paper's resilience
    /// step). With `false` the wrapper uses the raw merged expression —
    /// the baseline the resilience experiments compare against.
    pub maximize: bool,
}

impl Default for WrapperConfig {
    fn default() -> Self {
        WrapperConfig {
            seq: SeqConfig::tags_only(),
            maximize: true,
        }
    }
}

/// Errors from training or extraction.
#[derive(Debug, PartialEq, Eq)]
pub enum WrapperError {
    /// The target token of a sample is not representable in the chosen
    /// abstraction (e.g. a text node with `include_text = false`).
    TargetNotRepresentable { sample: usize },
    /// Learning failed.
    Learn(LearnError),
    /// Maximization failed and fallback was disabled.
    Maximize(ExtractionError),
    /// Extraction failed on a page.
    Extract(ExtractFailure),
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperError::TargetNotRepresentable { sample } => {
                write!(
                    f,
                    "sample {sample}: target not representable in abstraction"
                )
            }
            WrapperError::Learn(e) => write!(f, "learning failed: {e}"),
            WrapperError::Maximize(e) => write!(f, "maximization failed: {e}"),
            WrapperError::Extract(e) => write!(f, "extraction failed: {e:?}"),
        }
    }
}

impl std::error::Error for WrapperError {}

impl WrapperError {
    /// True when extraction ran to completion but matched no position —
    /// the *empty result* outcome. Consumers (the daemon's drift
    /// detector, the corpus pipeline) count it separately from hard
    /// failures like ambiguous matches: an empty result is the classic
    /// symptom of a drifted page that the wrapper's language no longer
    /// covers.
    pub fn is_no_match(&self) -> bool {
        matches!(self, WrapperError::Extract(ExtractFailure::NoMatch))
    }
}

/// A trained wrapper.
pub struct Wrapper {
    alphabet: Alphabet,
    expr: ExtractionExpr,
    extractor: Extractor,
    seq_cfg: SeqConfig,
    maximized: bool,
    format_version: u32,
    revision: u32,
    train_stats: StoreStats,
}

impl Wrapper {
    /// Train on sample pages. See the [module docs](self) for the pipeline.
    ///
    /// When `cfg.maximize` is set and pivot maximization fails on the
    /// learned expression (its preconditions are heuristic), training
    /// falls back to the unmaximized expression rather than erroring —
    /// a wrapper that works on the training layouts beats no wrapper.
    pub fn train(pages: &[TrainPage], cfg: WrapperConfig) -> Result<Wrapper, WrapperError> {
        let stats_before = Store::stats();
        // Abstract every page, collecting the vocabulary.
        let mut vocab = Vocabulary::new();
        vocab.observe_name(OTHER);
        let mut samples = Vec::with_capacity(pages.len());
        for (i, page) in pages.iter().enumerate() {
            let seq = MarkedSeq::from_tokens(&page.tokens, page.target, &cfg.seq)
                .ok_or(WrapperError::TargetNotRepresentable { sample: i })?;
            samples.push(seq);
        }
        for s in &samples {
            for n in &s.names {
                vocab.observe_name(n);
            }
        }
        let alphabet = vocab.alphabet();

        // Learn an unambiguous pivot expression.
        let learned = learn_unambiguous(&alphabet, &samples).map_err(WrapperError::Learn)?;

        // Maximize (with graceful fallback).
        let (expr, maximized) = if cfg.maximize {
            match learned.pivot.as_ref().map(|p| p.maximize()) {
                Some(Ok(maximal)) => (maximal, true),
                _ => (learned.expr, false),
            }
        } else {
            (learned.expr, false)
        };

        let extractor = Extractor::compile(&expr);
        Ok(Wrapper {
            alphabet,
            expr,
            extractor,
            seq_cfg: cfg.seq,
            maximized,
            format_version: crate::persist::FORMAT_VERSION,
            revision: 1,
            train_stats: Store::stats().since(&stats_before),
        })
    }

    /// Assemble a wrapper from pre-built parts (the import path of
    /// [`crate::persist`]; training is bypassed entirely).
    /// `format_version` is the artifact format the wrapper was parsed
    /// from (today always [`crate::persist::FORMAT_VERSION`] — the strict
    /// importer rejects anything else — but provenance records carry it
    /// so a future v3 reader can tell the two apart).
    pub(crate) fn from_parts(
        alphabet: Alphabet,
        expr: ExtractionExpr,
        extractor: Extractor,
        seq_cfg: SeqConfig,
        maximized: bool,
        format_version: u32,
    ) -> Wrapper {
        Wrapper {
            alphabet,
            expr,
            extractor,
            seq_cfg,
            maximized,
            format_version,
            revision: 1,
            train_stats: StoreStats::default(),
        }
    }

    /// The abstraction configuration this wrapper applies to pages.
    pub fn seq_config(&self) -> &SeqConfig {
        &self.seq_cfg
    }

    /// The learned extraction expression.
    pub fn expr(&self) -> &ExtractionExpr {
        &self.expr
    }

    /// The training alphabet (includes `#other`).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Whether the wrapper holds a maximized expression.
    pub fn is_maximized(&self) -> bool {
        self.maximized
    }

    /// The artifact format version this wrapper was trained at or loaded
    /// from (see [`crate::persist::FORMAT_VERSION`]). Provenance records
    /// emit this alongside the wrapper name so downstream consumers can
    /// audit which on-disk format produced a tuple without reparsing the
    /// artifact.
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// The runtime install revision of this wrapper instance. Starts at 1
    /// for a freshly trained or imported wrapper; a serving registry bumps
    /// it on every hot install of the same name (including online repairs)
    /// so provenance records can tell which generation of a wrapper
    /// produced a tuple. Not persisted in the artifact — it is a property
    /// of the running process, not of the on-disk format.
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// Set the install revision (see [`Wrapper::revision`]). Takes
    /// `&mut self`, so it can only be applied before the wrapper is
    /// shared (e.g. by a registry just before wrapping it in an `Arc`).
    pub fn set_revision(&mut self, revision: u32) {
        self.revision = revision;
    }

    /// Language-store counter deltas accumulated while this wrapper was
    /// trained (all zeros for wrappers loaded via [`crate::persist`]).
    pub fn train_store_stats(&self) -> &StoreStats {
        &self.train_stats
    }

    /// The compiled extraction engine's configuration (scan mode, product
    /// size, classification kernel) — surfaced by `--stats` and
    /// `/metrics` so mode selection is observable in production.
    pub fn engine_info(&self) -> rextract_extraction::EngineInfo {
        self.extractor.engine_info()
    }

    /// Locate the target on a page, reusing `scratch` for the abstracted
    /// word, back-map, tag memo, and the extractor's scan buffers; returns
    /// the target's **token index**. This is the serve hot path: the tag
    /// memo persists across pages of the same wrapper (validated by
    /// [`Alphabet::uid`]), so at steady state — e.g. a batch of documents
    /// for one wrapper — extraction performs **zero** heap allocations;
    /// only a tag name never seen under this alphabet adds a memo entry.
    pub fn extract_target_with(
        &self,
        tokens: &[Token],
        scratch: &mut WrapperScratch,
    ) -> Result<usize, WrapperError> {
        abstract_page_into(&self.alphabet, &self.seq_cfg, tokens, scratch);
        let hit = self
            .extractor
            .extract_with(&scratch.word, &mut scratch.extract)
            .map_err(WrapperError::Extract)?;
        Ok(scratch.back[hit.position])
    }

    /// Locate the target on a page; returns its **token index**.
    /// Allocating convenience wrapper over
    /// [`Wrapper::extract_target_with`].
    pub fn extract_target(&self, tokens: &[Token]) -> Result<usize, WrapperError> {
        self.extract_target_with(tokens, &mut WrapperScratch::new())
    }

    /// All candidate target positions on a page as a unary
    /// [`SpanRelation`] binding `var`, in **token-index** space (unit
    /// spans mapped through the abstraction's back-map).
    ///
    /// This is the wrapper's entry into the span-relational algebra:
    /// unlike [`Wrapper::extract_target_with`] it does not demand
    /// uniqueness — zero candidates yield an empty relation and several
    /// candidates several rows — because a query join is itself the
    /// disambiguating step (Freydenberger–Kimelfeld–Peterfreund's
    /// reading, where each expression is a span extractor whose results
    /// compose relationally).
    pub fn span_relation_with(
        &self,
        var: impl Into<String>,
        tokens: &[Token],
        scratch: &mut WrapperScratch,
    ) -> SpanRelation {
        abstract_page_into(&self.alphabet, &self.seq_cfg, tokens, scratch);
        let (word, back, extract, _) = scratch.tuple_parts();
        let spans = self.extractor.spans_into(word, extract);
        SpanRelation::unary(var, spans.iter().map(|s| Span::unit(back[s.start])))
    }
}

/// Memo entries beyond this count fall back to direct alphabet lookups;
/// real sites have far fewer distinct tag names.
const MEMO_CAP: usize = 64;

/// Reusable buffers for the wrapper hot path: the abstracted symbol word,
/// its token back-map, a per-alphabet tag-name memo, and the extraction
/// engine's [`ExtractScratch`]. Keep one per worker thread.
#[derive(Debug, Default)]
pub struct WrapperScratch {
    /// The abstracted page as wrapper symbols.
    word: Vec<Symbol>,
    /// `back[i]` = source token index of `word[i]`.
    back: Vec<usize>,
    /// Tag-name memo: `(is_end_tag, tag_name) → symbol`, so repeated tags
    /// resolve with a short linear probe instead of a hash lookup (and,
    /// for end tags, without re-building the `/NAME` string). Valid for
    /// the alphabet identified by `memo_uid` and kept across pages — the
    /// reason a warmed same-wrapper batch extracts without allocating.
    memo: Vec<(bool, String, Symbol)>,
    /// [`Alphabet::uid`] the memo was built against; a different alphabet
    /// (another wrapper on the same worker) invalidates it wholesale.
    memo_uid: Option<u64>,
    /// Scan buffers for the extraction engine.
    extract: ExtractScratch,
    /// Tuple positions for [`TupleWrapper`](crate::tuple::TupleWrapper).
    pub(crate) positions: Vec<usize>,
    /// Per-token hash sequence for [`WrapperScratch::skeleton_signature`].
    sig: Vec<u64>,
    /// Double buffer for the signature's tandem-repeat collapse passes.
    sig_tmp: Vec<u64>,
}

impl WrapperScratch {
    /// Fresh, empty scratch. Buffers grow on first use and are then
    /// reused.
    pub fn new() -> WrapperScratch {
        WrapperScratch::default()
    }

    /// The abstracted word of the most recent page (testing/observability).
    pub fn word(&self) -> &[Symbol] {
        &self.word
    }

    /// The token back-map of the most recent page.
    pub fn back(&self) -> &[usize] {
        &self.back
    }

    /// A structural fingerprint of a page: the hash of its
    /// **tag-abstraction skeleton** under `cfg`, invariant to content
    /// text and to how many times a repeating block (e.g. a table row)
    /// repeats.
    ///
    /// This is the corpus router's site signature (after Ferrara &
    /// Baumgartner's adaptable-wrapper fingerprints): two pages produced
    /// from the same template hash equal even when their text differs
    /// and their result tables have different row counts, while any
    /// change to the tag skeleton itself — a new tag name, a reordered
    /// construct — changes the hash.
    ///
    /// Mechanics: each token maps to a `u64` — start tags hash their
    /// name (salted), end tags likewise when `cfg.include_end_tags`,
    /// non-blank text maps to one fixed marker when `cfg.include_text`
    /// (content invariance by construction), comments/doctypes are
    /// skipped, and `cfg.refine_attrs` is deliberately ignored
    /// (attribute values vary per page). Adjacent duplicated blocks
    /// (`s[i..i+L] == s[i+L..i+2L]`) are then collapsed to one copy
    /// until fixpoint — so `k ≥ 1` repetitions of a row all produce the
    /// same collapsed skeleton — and the collapsed sequence is FNV-1a
    /// hashed. Deterministic, wrapper-independent, and allocation-free
    /// at steady state (the hash sequence lives in reusable scratch
    /// buffers).
    pub fn skeleton_signature(&mut self, cfg: &SeqConfig, tokens: &[Token]) -> u64 {
        // Distinct salts keep `<p>` and `</p>` (and a text run) from
        // colliding; arbitrary odd 64-bit constants.
        const START_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
        const END_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;
        const TEXT_MARK: u64 = 0x1656_67b1_9e37_79f9;
        self.sig.clear();
        for tok in tokens {
            let h = match tok {
                Token::StartTag { name, .. } => {
                    crate::persist::fnv1a_64(name.as_bytes()) ^ START_SALT
                }
                Token::EndTag { name } if cfg.include_end_tags => {
                    crate::persist::fnv1a_64(name.as_bytes()) ^ END_SALT
                }
                Token::Text(_) if cfg.include_text && !tok.is_blank_text() => TEXT_MARK,
                _ => continue,
            };
            self.sig.push(h);
        }
        collapse_tandem_repeats(&mut self.sig, &mut self.sig_tmp);
        // FNV-1a over the collapsed sequence's little-endian bytes,
        // folded incrementally so no byte buffer is materialized.
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for &h in &self.sig {
            for b in h.to_le_bytes() {
                acc ^= u64::from(b);
                acc = acc.wrapping_mul(0x100_0000_01b3);
            }
        }
        acc
    }

    /// Disjoint borrows for tuple extraction: read the abstracted word
    /// and back-map while writing the scan buffers and tuple positions.
    #[allow(clippy::type_complexity)]
    pub(crate) fn tuple_parts(
        &mut self,
    ) -> (&[Symbol], &[usize], &mut ExtractScratch, &mut Vec<usize>) {
        (
            &self.word,
            &self.back,
            &mut self.extract,
            &mut self.positions,
        )
    }
}

/// Repeat blocks longer than this are not collapsed; real templates
/// repeat short constructs (table rows, list items), and an uncollapsed
/// long block merely yields a more specific — still deterministic —
/// signature.
const MAX_REPEAT_BLOCK: usize = 32;

/// Collapse adjacent duplicated blocks (`seq[i..i+L] == seq[i+L..i+2L]`,
/// smallest `L` first) to one copy, repeating the pass until a fixpoint:
/// `k` back-to-back repetitions of a block reduce to a single copy for
/// every `k ≥ 1`. `tmp` is the double buffer; both vectors only ever
/// grow, so a warmed scratch collapses without allocating.
fn collapse_tandem_repeats(seq: &mut Vec<u64>, tmp: &mut Vec<u64>) {
    loop {
        let mut changed = false;
        tmp.clear();
        let mut i = 0;
        while i < seq.len() {
            let max_l = ((seq.len() - i) / 2).min(MAX_REPEAT_BLOCK);
            let repeat = (1..=max_l).find(|&l| seq[i..i + l] == seq[i + l..i + 2 * l]);
            match repeat {
                Some(l) => {
                    // Keep the first copy, drop the duplicate.
                    tmp.extend_from_slice(&seq[i..i + l]);
                    i += 2 * l;
                    changed = true;
                }
                None => {
                    tmp.push(seq[i]);
                    i += 1;
                }
            }
        }
        std::mem::swap(seq, tmp);
        if !changed {
            return;
        }
    }
}

/// Resolve one tag name through the per-page memo, falling back to (and
/// memoizing) an alphabet hash lookup on miss.
fn memo_resolve(
    alphabet: &Alphabet,
    memo: &mut Vec<(bool, String, Symbol)>,
    is_end: bool,
    name: &str,
    other: Symbol,
) -> Symbol {
    if let Some((_, _, sym)) = memo.iter().find(|(end, n, _)| *end == is_end && n == name) {
        return *sym;
    }
    let sym = if is_end {
        alphabet.try_sym(&format!("/{name}")).unwrap_or(other)
    } else {
        alphabet.try_sym(name).unwrap_or(other)
    };
    if memo.len() < MEMO_CAP {
        memo.push((is_end, name.to_string(), sym));
    }
    sym
}

/// Abstract a page under `cfg` directly into `scratch` (word + back-map),
/// mapping names to `alphabet` symbols with `#other` for names unseen at
/// training time. Produces exactly the output of
/// [`to_names`](rextract_html::seq::to_names) followed by per-entry symbol
/// lookup (equivalence-tested), but resolves repeated tag names through a
/// per-page memo and builds no intermediate name strings on the memo-hit
/// path. Shared by [`Wrapper`] and
/// [`TupleWrapper`](crate::tuple::TupleWrapper).
pub(crate) fn abstract_page_into(
    alphabet: &Alphabet,
    cfg: &SeqConfig,
    tokens: &[Token],
    scratch: &mut WrapperScratch,
) {
    let other = alphabet.sym(OTHER);
    // `#text` resolves once per page, not once per text run.
    let text_sym = if cfg.include_text {
        alphabet.try_sym("#text").unwrap_or(other)
    } else {
        other
    };
    scratch.word.clear();
    scratch.back.clear();
    // The memo survives page-to-page as long as the alphabet does:
    // consecutive pages for one wrapper (the batched serve path) resolve
    // every repeated tag allocation-free.
    if scratch.memo_uid != Some(alphabet.uid()) {
        scratch.memo.clear();
        scratch.memo_uid = Some(alphabet.uid());
    }
    for (i, tok) in tokens.iter().enumerate() {
        let sym = match tok {
            Token::StartTag { name, .. } => {
                let refined = cfg
                    .refine_attrs
                    .iter()
                    .find(|(t, a)| t == name && tok.attr(a).is_some());
                match refined {
                    // Rare refined path: build the `NAME@attr=value` name
                    // exactly as `to_names` does and resolve it directly
                    // (values vary too much to be worth memoizing).
                    Some((t, a)) => {
                        let value = tok.attr(a).expect("checked present");
                        let clean: String = value
                            .chars()
                            .map(|c| {
                                if c.is_alphanumeric() || matches!(c, '_' | '/' | ':' | '#') {
                                    c
                                } else {
                                    '_'
                                }
                            })
                            .collect();
                        let refined_name = format!("{t}@{a}={clean}");
                        alphabet.try_sym(&refined_name).unwrap_or(other)
                    }
                    None => memo_resolve(alphabet, &mut scratch.memo, false, name, other),
                }
            }
            Token::EndTag { name } if cfg.include_end_tags => {
                memo_resolve(alphabet, &mut scratch.memo, true, name, other)
            }
            Token::Text(_) if cfg.include_text && !tok.is_blank_text() => text_sym,
            Token::EndTag { .. } | Token::Text(_) | Token::Comment(_) | Token::Doctype(_) => {
                continue
            }
        };
        scratch.word.push(sym);
        scratch.back.push(i);
    }
}

/// Allocating convenience wrapper over [`abstract_page_into`].
#[cfg(test)]
pub(crate) fn abstract_page_with(
    alphabet: &Alphabet,
    cfg: &SeqConfig,
    tokens: &[Token],
) -> (Vec<Symbol>, Vec<usize>) {
    let mut scratch = WrapperScratch::new();
    abstract_page_into(alphabet, cfg, tokens, &mut scratch);
    (scratch.word, scratch.back)
}

impl fmt::Debug for Wrapper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Wrapper(maximized={}, |Σ|={}, expr={})",
            self.maximized,
            self.alphabet.len(),
            self.expr.to_text()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{PageStyle, SiteConfig, SiteGenerator};
    use rextract_learn::perturb::Perturber;

    fn gen(seed: u64) -> SiteGenerator {
        SiteGenerator::new(SiteConfig {
            seed,
            ..SiteConfig::default()
        })
    }

    fn train_pages(seed: u64) -> Vec<TrainPage> {
        let mut g = gen(seed);
        vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ]
    }

    #[test]
    fn trains_and_extracts_on_training_pages() {
        let pages = train_pages(2);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        for p in &pages {
            assert_eq!(w.extract_target(&p.tokens).unwrap(), p.target);
        }
        assert!(w.expr().is_unambiguous());
    }

    #[test]
    fn training_records_store_activity() {
        let pages = train_pages(2);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        let s = w.train_store_stats();
        assert!(
            s.hits() + s.misses() > 0,
            "training must exercise the language store: {}",
            s.summary()
        );
    }

    #[test]
    fn maximized_wrapper_is_maximal() {
        let pages = train_pages(7);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        assert!(w.is_maximized());
        assert!(w.expr().is_maximal());
    }

    #[test]
    fn unmaximized_config_skips_maximization() {
        let pages = train_pages(7);
        let w = Wrapper::train(
            &pages,
            WrapperConfig {
                maximize: false,
                ..WrapperConfig::default()
            },
        )
        .unwrap();
        assert!(!w.is_maximized());
    }

    #[test]
    fn extracts_on_unseen_styles() {
        // Train on plain + table, extract on busy pages (new rows, links).
        let pages = train_pages(11);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        let mut g = gen(99);
        let mut ok = 0;
        let total = 20;
        for _ in 0..total {
            let p = g.page_with_style(PageStyle::Busy);
            if w.extract_target(&p.tokens) == Ok(p.target) {
                ok += 1;
            }
        }
        assert!(
            ok >= total * 9 / 10,
            "only {ok}/{total} busy pages extracted"
        );
    }

    #[test]
    fn maximized_beats_unmaximized_under_perturbation() {
        let pages = train_pages(5);
        let maxed = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        let raw = Wrapper::train(
            &pages,
            WrapperConfig {
                maximize: false,
                ..WrapperConfig::default()
            },
        )
        .unwrap();
        let mut g = gen(123);
        let mut p = Perturber::new(77);
        let (mut max_ok, mut raw_ok, mut trials) = (0, 0, 0);
        for _ in 0..40 {
            let page = g.page();
            let edited = p.perturb(&page.tokens, page.target, 3);
            trials += 1;
            if maxed.extract_target(&edited.tokens) == Ok(edited.target) {
                max_ok += 1;
            }
            if raw.extract_target(&edited.tokens) == Ok(edited.target) {
                raw_ok += 1;
            }
        }
        assert!(
            max_ok >= raw_ok,
            "maximized {max_ok}/{trials} < raw {raw_ok}/{trials}"
        );
        assert!(max_ok > trials / 2, "maximized too weak: {max_ok}/{trials}");
    }

    #[test]
    fn unknown_tags_map_to_other() {
        let pages = train_pages(3);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        // Inject a tag never seen in training.
        let mut tokens = pages[1].tokens.clone();
        tokens.insert(0, Token::start("marquee"));
        tokens.insert(1, Token::end("marquee"));
        let got = w.extract_target(&tokens).unwrap();
        assert_eq!(got, pages[1].target + 2);
    }

    /// The definitional abstraction: `to_names` followed by per-entry
    /// alphabet lookup — exactly what `abstract_page_with` did before the
    /// memoized rewrite. The memo path must match it entry for entry.
    fn abstract_via_to_names(
        alphabet: &Alphabet,
        cfg: &SeqConfig,
        tokens: &[Token],
    ) -> (Vec<Symbol>, Vec<usize>) {
        let other = alphabet.sym(OTHER);
        let entries = rextract_html::seq::to_names(tokens, cfg);
        let mut word = Vec::with_capacity(entries.len());
        let mut back = Vec::with_capacity(entries.len());
        for e in entries {
            word.push(alphabet.try_sym(&e.name).unwrap_or(other));
            back.push(e.token_index);
        }
        (word, back)
    }

    #[test]
    fn memoized_abstraction_matches_to_names_path() {
        use rextract_html::tokenizer::tokenize;
        let html = r#"<!DOCTYPE html><!-- c --><p>Price: $4</p><table>
            <tr><td><input type="radio"><input type="text"><input></td></tr>
            <tr><td>  </td><td><marquee>new</marquee></td></tr>
            </table><p>again</p>"#;
        let tokens = tokenize(html);
        // Vocabulary that misses MARQUEE (→ #other) and one input
        // refinement, under every abstraction level.
        let mut vocab = Vocabulary::new();
        vocab.observe_name(OTHER);
        for n in [
            "P",
            "/P",
            "TABLE",
            "/TABLE",
            "TR",
            "/TR",
            "TD",
            "/TD",
            "INPUT",
            "#text",
            "INPUT@type=radio",
        ] {
            vocab.observe_name(n);
        }
        let alphabet = vocab.alphabet();
        let configs = [
            SeqConfig::tags_only(),
            SeqConfig::with_text(),
            SeqConfig::with_text().refine("input", "type"),
        ];
        let mut scratch = WrapperScratch::new();
        for cfg in &configs {
            let want = abstract_via_to_names(&alphabet, cfg, &tokens);
            // Scratch reuse across configs must not leak stale state.
            abstract_page_into(&alphabet, cfg, &tokens, &mut scratch);
            assert_eq!((scratch.word.clone(), scratch.back.clone()), want);
            assert_eq!(abstract_page_with(&alphabet, cfg, &tokens), want);
        }
    }

    #[test]
    fn span_relation_reports_all_candidates_in_token_space() {
        let pages = train_pages(19);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        let mut scratch = WrapperScratch::new();
        for p in &pages {
            let rel = w.span_relation_with("target", &p.tokens, &mut scratch);
            assert_eq!(rel.vars(), ["target".to_string()]);
            // The unique-extraction path and the relation must agree:
            // exactly one candidate, at the target's token index.
            assert_eq!(
                rel.rows(),
                [vec![rextract_extraction::Span::unit(p.target)]]
            );
        }
        // A page the wrapper cannot parse yields an empty relation, not
        // an error.
        let junk = rextract_html::tokenizer::tokenize("<blink>nothing</blink>");
        let rel = w.span_relation_with("target", &junk, &mut scratch);
        assert!(rel.is_empty());
    }

    #[test]
    fn scratch_reuse_matches_fresh_extraction() {
        let pages = train_pages(13);
        let w = Wrapper::train(&pages, WrapperConfig::default()).unwrap();
        let mut g = gen(31);
        let mut scratch = WrapperScratch::new();
        for _ in 0..10 {
            let p = g.page_with_style(PageStyle::Busy);
            assert_eq!(
                w.extract_target_with(&p.tokens, &mut scratch),
                w.extract_target(&p.tokens)
            );
        }
    }

    #[test]
    fn tandem_collapse_reduces_repeats_to_one_copy() {
        let cases: [(&[u64], &[u64]); 5] = [
            (&[1, 2, 1, 2, 1, 2], &[1, 2]),          // 3 reps of a pair
            (&[7, 7, 7, 9], &[7, 9]),                // run of singles
            (&[1, 2, 3], &[1, 2, 3]),                // no repeats
            (&[], &[]),                              // empty
            (&[5, 1, 2, 1, 2, 6, 6], &[5, 1, 2, 6]), // interior repeats
        ];
        let mut tmp = Vec::new();
        for (input, want) in cases {
            let mut seq = input.to_vec();
            collapse_tandem_repeats(&mut seq, &mut tmp);
            assert_eq!(seq, want, "collapse of {input:?}");
        }
    }

    #[test]
    fn skeleton_signature_invariants() {
        let cfg = SeqConfig::with_text();
        let mut scratch = WrapperScratch::new();
        let listing = |rows: usize, label: &str| -> Vec<Token> {
            let mut toks = vec![Token::start("table")];
            for i in 0..rows {
                toks.push(Token::start("tr"));
                toks.push(Token::start("td"));
                toks.push(Token::Text(format!("{label} #{i}")));
                toks.push(Token::end("td"));
                toks.push(Token::end("tr"));
            }
            toks.push(Token::end("table"));
            toks
        };
        let base = scratch.skeleton_signature(&cfg, &listing(1, "Widget"));
        // Row-count invariance: k repeated rows collapse to one.
        for rows in 2..=6 {
            assert_eq!(
                scratch.skeleton_signature(&cfg, &listing(rows, "Widget")),
                base,
                "{rows}-row listing diverged"
            );
        }
        // Content invariance: text, attributes, comments don't matter.
        let mut restyled = listing(3, "Completely different text!");
        restyled.insert(0, Token::Comment("generated".into()));
        restyled[1] = Token::start_with(
            "table",
            vec![rextract_html::token::Attribute::new("border", "1")],
        );
        assert_eq!(scratch.skeleton_signature(&cfg, &restyled), base);
        // Skeleton sensitivity: a novel tag changes the hash.
        let mut novel = listing(2, "Widget");
        novel.insert(1, Token::start("blink"));
        assert_ne!(scratch.skeleton_signature(&cfg, &novel), base);
        // Start and end tags of the same name must not collide.
        let open_only = vec![Token::start("p"), Token::start("p")];
        let balanced = vec![Token::start("p"), Token::end("p")];
        assert_ne!(
            scratch.skeleton_signature(&cfg, &open_only),
            scratch.skeleton_signature(&cfg, &balanced)
        );
    }

    #[test]
    fn trained_wrapper_reports_current_format_version() {
        let w = Wrapper::train(&train_pages(2), WrapperConfig::default()).unwrap();
        assert_eq!(w.format_version(), crate::persist::FORMAT_VERSION);
    }

    #[test]
    fn revision_defaults_to_one_and_is_settable() {
        let mut w = Wrapper::train(&train_pages(2), WrapperConfig::default()).unwrap();
        assert_eq!(w.revision(), 1);
        w.set_revision(4);
        assert_eq!(w.revision(), 4);
    }

    #[test]
    fn target_not_representable_error() {
        let tokens = rextract_html::tokenizer::tokenize("<p>price</p>");
        let page = TrainPage { tokens, target: 1 }; // the text node
        let err = Wrapper::train(&[page], WrapperConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            WrapperError::TargetNotRepresentable { sample: 0 }
        ));
    }
}
