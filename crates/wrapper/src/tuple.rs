//! Tuple wrappers: extract several related objects per page.
//!
//! The single-target [`Wrapper`](crate::wrapper::Wrapper) locates one
//! token; shopbots usually need a record — here, the search **FORM**
//! together with its text **INPUT** (so the robot can both address the
//! form and fill the right field). [`TupleWrapper`] trains a
//! [`MultiExtractionExpr`] from multi-marked pages via the region-wise
//! merging of [`rextract_learn::multi_merge`] and componentwise
//! maximization.

use crate::wrapper::{
    abstract_page_into, TrainPage, WrapperConfig, WrapperError, WrapperScratch, OTHER,
};
use rextract_automata::Alphabet;
use rextract_extraction::{MultiExtractionExpr, MultiExtractor, Span, SpanRelation};
use rextract_html::seq::{to_names, SeqConfig, Vocabulary};
use rextract_html::token::Token;
use rextract_learn::multi_merge::{merge_multi, MultiMarkedSeq};

/// A training page with several target token indices (strictly
/// increasing).
#[derive(Debug, Clone)]
pub struct MultiTrainPage {
    /// Token stream of the page.
    pub tokens: Vec<Token>,
    /// Token indices of the marked targets, in document order.
    pub targets: Vec<usize>,
}

impl MultiTrainPage {
    /// Adapt a single-target page (arity-1 tuple).
    pub fn from_single(page: &TrainPage) -> MultiTrainPage {
        MultiTrainPage {
            tokens: page.tokens.clone(),
            targets: vec![page.target],
        }
    }
}

/// A trained tuple wrapper.
pub struct TupleWrapper {
    alphabet: Alphabet,
    expr: MultiExtractionExpr,
    extractor: MultiExtractor,
    seq_cfg: SeqConfig,
    maximized: bool,
}

impl TupleWrapper {
    /// Train on multi-marked pages. Mirrors
    /// [`Wrapper::train`](crate::wrapper::Wrapper::train): abstraction →
    /// region-wise merge → componentwise maximization with graceful
    /// fallback.
    pub fn train(
        pages: &[MultiTrainPage],
        cfg: WrapperConfig,
    ) -> Result<TupleWrapper, WrapperError> {
        let mut vocab = Vocabulary::new();
        vocab.observe_name(OTHER);
        let mut samples = Vec::with_capacity(pages.len());
        for (i, page) in pages.iter().enumerate() {
            let entries = to_names(&page.tokens, &cfg.seq);
            let positions: Option<Vec<usize>> = page
                .targets
                .iter()
                .map(|&t| entries.iter().position(|e| e.token_index == t))
                .collect();
            let positions = positions.ok_or(WrapperError::TargetNotRepresentable { sample: i })?;
            let names: Vec<String> = entries.into_iter().map(|e| e.name).collect();
            for n in &names {
                vocab.observe_name(n);
            }
            samples.push(MultiMarkedSeq::new(names, positions));
        }
        let alphabet = vocab.alphabet();

        let merged = merge_multi(&alphabet, &samples).map_err(WrapperError::Learn)?;
        let (expr, maximized) = if cfg.maximize {
            match merged.maximize() {
                Ok(m) if m.is_unambiguous() => (m, true),
                _ => (merged, false),
            }
        } else {
            (merged, false)
        };

        let extractor = expr.compile();
        Ok(TupleWrapper {
            alphabet,
            expr,
            extractor,
            seq_cfg: cfg.seq,
            maximized,
        })
    }

    /// Assemble a tuple wrapper from pre-built parts (the import path of
    /// [`crate::persist`]; training is bypassed entirely).
    pub(crate) fn from_parts(
        alphabet: Alphabet,
        expr: MultiExtractionExpr,
        extractor: MultiExtractor,
        seq_cfg: SeqConfig,
        maximized: bool,
    ) -> TupleWrapper {
        TupleWrapper {
            alphabet,
            expr,
            extractor,
            seq_cfg,
            maximized,
        }
    }

    /// The learned multi-marker expression.
    pub fn expr(&self) -> &MultiExtractionExpr {
        &self.expr
    }

    /// The training alphabet (includes `#other`).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The abstraction configuration this wrapper applies to pages.
    pub fn seq_config(&self) -> &SeqConfig {
        &self.seq_cfg
    }

    /// Number of markers `k` (fields per record).
    pub fn arity(&self) -> usize {
        self.expr.arity()
    }

    /// Whether componentwise maximization succeeded.
    pub fn is_maximized(&self) -> bool {
        self.maximized
    }

    /// Locate the target tuple, reusing `scratch` for the abstraction and
    /// every per-marker scan; returns **token indices** in page order.
    /// The only steady-state allocation is the small returned tuple.
    pub fn extract_targets_with(
        &self,
        tokens: &[Token],
        scratch: &mut WrapperScratch,
    ) -> Result<Vec<usize>, WrapperError> {
        abstract_page_into(&self.alphabet, &self.seq_cfg, tokens, scratch);
        // Split the scratch so the word can be read while the scan
        // buffers and tuple positions are written.
        let (word, back, extract, positions) = scratch.tuple_parts();
        self.extractor
            .extract_into(word, extract, positions)
            .map_err(WrapperError::Extract)?;
        Ok(positions.iter().map(|&p| back[p]).collect())
    }

    /// Locate the target tuple; returns **token indices** in page order.
    /// Allocating convenience wrapper over
    /// [`TupleWrapper::extract_targets_with`].
    pub fn extract_targets(&self, tokens: &[Token]) -> Result<Vec<usize>, WrapperError> {
        self.extract_targets_with(tokens, &mut WrapperScratch::new())
    }

    /// Extract the tuple as a single-row [`SpanRelation`] binding `vars`
    /// (one per marker, in marker order) in **token-index** space — the
    /// tuple wrapper's entry into the span-relational algebra.
    pub fn span_relation_with(
        &self,
        vars: impl IntoIterator<Item = impl Into<String>>,
        tokens: &[Token],
        scratch: &mut WrapperScratch,
    ) -> Result<SpanRelation, WrapperError> {
        let mut rel = SpanRelation::empty(vars);
        assert_eq!(
            rel.arity(),
            self.arity(),
            "need one variable per marker ({} markers, {} variables)",
            self.arity(),
            rel.arity()
        );
        let positions = self.extract_targets_with(tokens, scratch)?;
        rel.insert(positions.into_iter().map(Span::unit).collect());
        Ok(rel)
    }
}

impl std::fmt::Debug for TupleWrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TupleWrapper(arity={}, maximized={}, expr={})",
            self.expr.arity(),
            self.maximized,
            self.expr.to_text()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{Page, PageStyle, SiteConfig, SiteGenerator};
    use rextract_learn::perturb::Perturber;

    fn gen(seed: u64) -> SiteGenerator {
        SiteGenerator::new(SiteConfig {
            seed,
            ..SiteConfig::default()
        })
    }

    /// Mark the FORM and its 2nd INPUT (the paper's record, arity 2).
    fn multi_page(p: &Page) -> MultiTrainPage {
        let form = p
            .tokens
            .iter()
            .position(|t| t.tag_name() == Some("FORM"))
            .expect("page has a form");
        MultiTrainPage {
            tokens: p.tokens.clone(),
            targets: vec![form, p.target],
        }
    }

    fn train(maximize: bool, seed: u64) -> TupleWrapper {
        let mut g = gen(seed);
        let pages = vec![
            multi_page(&g.page_with_style(PageStyle::Plain)),
            multi_page(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        TupleWrapper::train(
            &pages,
            WrapperConfig {
                maximize,
                ..WrapperConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn extracts_form_and_field_on_training_pages() {
        let mut g = gen(5);
        let pages = vec![
            multi_page(&g.page_with_style(PageStyle::Plain)),
            multi_page(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        let w = TupleWrapper::train(&pages, WrapperConfig::default()).unwrap();
        for p in &pages {
            assert_eq!(w.extract_targets(&p.tokens).unwrap(), p.targets);
        }
        assert!(w.expr().is_unambiguous());
    }

    #[test]
    fn generalizes_to_unseen_layouts() {
        let w = train(true, 7);
        assert!(w.is_maximized());
        let mut g = gen(900);
        let mut ok = 0;
        for _ in 0..20 {
            let p = g.page_with_style(PageStyle::Busy);
            let mp = multi_page(&p);
            if w.extract_targets(&mp.tokens).ok() == Some(mp.targets.clone()) {
                ok += 1;
            }
        }
        assert!(ok >= 18, "only {ok}/20 busy pages");
    }

    #[test]
    fn maximized_tuple_wrapper_survives_edits_better() {
        let maxed = train(true, 11);
        let raw = train(false, 11);
        let mut g = gen(123);
        let mut perturber = Perturber::new(3);
        let (mut ok_max, mut ok_raw) = (0, 0);
        for _ in 0..30 {
            let p = g.page();
            let mp = multi_page(&p);
            // Perturb while tracking the second target (the INPUT); the
            // FORM position shifts identically through insertions before
            // it, so re-derive it from the edited tokens.
            let edited = perturber.perturb(&mp.tokens, mp.targets[1], 2);
            let form = edited
                .tokens
                .iter()
                .position(|t| t.tag_name() == Some("FORM"))
                .expect("form survives");
            let want = vec![form, edited.target];
            if maxed.extract_targets(&edited.tokens).ok() == Some(want.clone()) {
                ok_max += 1;
            }
            if raw.extract_targets(&edited.tokens).ok() == Some(want) {
                ok_raw += 1;
            }
        }
        assert!(ok_max >= ok_raw, "maximized {ok_max} < raw {ok_raw}");
        assert!(ok_max >= 15, "tuple resilience collapsed: {ok_max}/30");
    }

    #[test]
    fn arity_one_agrees_with_single_wrapper() {
        let mut g = gen(17);
        let p1 = g.page_with_style(PageStyle::Plain);
        let p2 = g.page_with_style(PageStyle::TableEmbedded);
        let singles = [TrainPage::from(&p1), TrainPage::from(&p2)];
        let multis: Vec<MultiTrainPage> = singles.iter().map(MultiTrainPage::from_single).collect();
        let tw = TupleWrapper::train(&multis, WrapperConfig::default()).unwrap();
        for p in [&p1, &p2] {
            assert_eq!(tw.extract_targets(&p.tokens).unwrap(), vec![p.target]);
        }
    }

    #[test]
    fn span_relation_is_the_tuple_as_one_row() {
        use rextract_extraction::Span;
        let mut g = gen(5);
        let pages = vec![
            multi_page(&g.page_with_style(PageStyle::Plain)),
            multi_page(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        let w = TupleWrapper::train(&pages, WrapperConfig::default()).unwrap();
        let mut scratch = WrapperScratch::new();
        for p in &pages {
            let rel = w
                .span_relation_with(["form", "field"], &p.tokens, &mut scratch)
                .unwrap();
            assert_eq!(rel.vars(), ["form".to_string(), "field".to_string()]);
            assert_eq!(
                rel.rows(),
                [p.targets.iter().map(|&t| Span::unit(t)).collect::<Vec<_>>()]
            );
        }
    }

    #[test]
    fn unrepresentable_target_is_reported() {
        let tokens = rextract_html::tokenizer::tokenize("<p>hello</p>");
        let page = MultiTrainPage {
            tokens,
            targets: vec![1], // the text node under tags_only
        };
        let err = TupleWrapper::train(&[page], WrapperConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            WrapperError::TargetNotRepresentable { sample: 0 }
        ));
    }
}
