//! The [`TargetLocator`] abstraction: anything that can point at the
//! target token of a page. The resilience harness compares locators —
//! maximized wrappers, unmaximized wrappers, and the prior-art LR
//! baseline — through this one interface.

use crate::wrapper::{TrainPage, Wrapper};
use rextract_html::seq::{to_names, SeqConfig};
use rextract_html::token::Token;
use rextract_learn::lr_baseline::LrWrapper;
use rextract_learn::MarkedSeq;

/// A trained page-target locator.
pub trait TargetLocator {
    /// Token index of the located target, or `None` (no match, ambiguous
    /// match, or any other failure).
    fn locate(&self, tokens: &[Token]) -> Option<usize>;
}

impl TargetLocator for Wrapper {
    fn locate(&self, tokens: &[Token]) -> Option<usize> {
        self.extract_target(tokens).ok()
    }
}

/// The LR-delimiter baseline ([`rextract_learn::lr_baseline`]) lifted to
/// token streams.
pub struct LrLocator {
    inner: LrWrapper,
    cfg: SeqConfig,
}

impl LrLocator {
    /// Train on the same pages a [`Wrapper`] trains on. Returns `None`
    /// when a target is not representable or samples disagree.
    pub fn train(pages: &[TrainPage], cfg: SeqConfig) -> Option<LrLocator> {
        let samples: Option<Vec<MarkedSeq>> = pages
            .iter()
            .map(|p| MarkedSeq::from_tokens(&p.tokens, p.target, &cfg))
            .collect();
        let inner = LrWrapper::train(&samples?)?;
        Some(LrLocator { inner, cfg })
    }

    /// The learned delimiters.
    pub fn wrapper(&self) -> &LrWrapper {
        &self.inner
    }
}

impl TargetLocator for LrLocator {
    fn locate(&self, tokens: &[Token]) -> Option<usize> {
        let entries = to_names(tokens, &self.cfg);
        let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
        let pos = self.inner.extract(&names)?;
        Some(entries[pos].token_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{PageStyle, SiteConfig, SiteGenerator};
    use crate::wrapper::WrapperConfig;

    fn pages(seed: u64) -> Vec<TrainPage> {
        let mut g = SiteGenerator::new(SiteConfig {
            seed,
            ..SiteConfig::default()
        });
        vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ]
    }

    #[test]
    fn lr_locator_finds_training_targets() {
        let ps = pages(3);
        let lr = LrLocator::train(&ps, SeqConfig::tags_only()).unwrap();
        for p in &ps {
            assert_eq!(lr.locate(&p.tokens), Some(p.target));
        }
        assert_eq!(lr.wrapper().target, "INPUT");
    }

    #[test]
    fn wrapper_implements_locator() {
        let ps = pages(5);
        let w = Wrapper::train(&ps, WrapperConfig::default()).unwrap();
        let loc: &dyn TargetLocator = &w;
        for p in &ps {
            assert_eq!(loc.locate(&p.tokens), Some(p.target));
        }
    }

    #[test]
    fn lr_is_more_brittle_than_maximized_wrapper() {
        use rextract_learn::perturb::Perturber;
        let ps = pages(9);
        let lr = LrLocator::train(&ps, SeqConfig::tags_only()).unwrap();
        let w = Wrapper::train(&ps, WrapperConfig::default()).unwrap();
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 77,
            ..SiteConfig::default()
        });
        let mut perturber = Perturber::new(4);
        let (mut lr_ok, mut w_ok) = (0, 0);
        for _ in 0..40 {
            let page = g.page();
            let edited = perturber.perturb(&page.tokens, page.target, 2);
            if lr.locate(&edited.tokens) == Some(edited.target) {
                lr_ok += 1;
            }
            if w.locate(&edited.tokens) == Some(edited.target) {
                w_ok += 1;
            }
        }
        assert!(
            w_ok > lr_ok,
            "maximized wrapper ({w_ok}) should beat LR baseline ({lr_ok})"
        );
    }
}
