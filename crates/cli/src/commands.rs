//! Command implementations for the `rextract` binary.

use rextract_automata::Alphabet;
use rextract_extraction::maximality::MaximalityStatus;
use rextract_extraction::right_filter::maximize_one_sided;
use rextract_extraction::{ExtractScratch, ExtractionExpr, Extractor};
use rextract_html::seq::{to_names, SeqConfig, Vocabulary};
use rextract_html::tokenizer::tokenize as html_tokenize;
use rextract_learn::merge::merge_samples;
use rextract_learn::MarkedSeq;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by `main` when `--stats` is passed: commands that compile an
/// extraction engine also print its configuration (scan mode, product
/// size, classification kernel) to stderr.
static SHOW_STATS: AtomicBool = AtomicBool::new(false);

/// Record whether `--stats` was requested (called once by `main`).
pub fn set_show_stats(on: bool) {
    SHOW_STATS.store(on, Ordering::Relaxed);
}

/// `--stats` line for a compiled engine: `rextract: engine mode=product
/// product_states=6 classifier=scalar classes=3`.
fn eprint_engine_info(info: rextract_extraction::EngineInfo) {
    if !SHOW_STATS.load(Ordering::Relaxed) {
        return;
    }
    let product = match info.product_states {
        Some(states) => format!(" product_states={states}"),
        None => String::new(),
    };
    eprintln!(
        "rextract: engine mode={}{product} classifier={} classes={}",
        info.mode.name(),
        info.classifier,
        info.num_classes,
    );
}

/// Top-level usage text.
pub const USAGE: &str = "\
rextract — resilient data extraction (PODS 2000)

USAGE:
  rextract tokenize <file.html>
      Print the tag-sequence abstraction of an HTML file.

  rextract analyze <alphabet> <expression>
      Classify an extraction expression: unambiguity (with witness),
      maximality (with extension witness), marker bound.
      <alphabet>   whitespace-separated symbol names, e.g. \"p q FORM\"
      <expression> E1 <p> E2 syntax, e.g. \"(q p)* <p> .*\"

  rextract maximize <alphabet> <expression>
      Maximize a one-sided expression (E⟨p⟩Σ* or Σ*⟨p⟩E) via
      Algorithm 6.2 / its mirror; prints the maximal expression.

  rextract extract <alphabet> <expression> <document>
      Locate the marked object in a document (whitespace-separated
      symbol names). Prints the 0-based position.

  rextract learn <sample>...
      Merge two or more marked tag sequences (target in angle
      brackets, e.g. \"P FORM INPUT <INPUT>\") into a pivot-form
      expression, then maximize it. The alphabet is inferred.

  rextract wrapper-train [--tuple] <out.wrapper> <sample.html>...
      Train a resilient wrapper from HTML sample files and write it to
      <out.wrapper> (a small auditable text artifact). Mark the target
      element in each sample with a data-target attribute, e.g.
      <input type=\"text\" data-target>. With --tuple, mark SEVERAL
      elements per sample (the same record in each — e.g. the form AND
      its text input) and a multi-marker tuple wrapper is trained
      instead, extracting all fields of the record per page.

  rextract wrapper-extract <in.wrapper> <page.html>
      Run a trained wrapper on a page; prints the token index and the
      located tag.

  rextract pipeline --wrappers DIR (--corpus DIR | --manifest FILE)
                    [--workers N] [--wrapper NAME]
                    [--route-sample NAME=FILE]...
                    [--tuple-wrapper NAME=FILE]... [--signatures FILE]
                    [--out FILE] [--unrouted FILE]
      Batch-extract a corpus of pages. Loads every *.wrapper artifact
      from --wrappers, routes each page to the wrapper whose site
      signature (tag-skeleton hash) matches — or probes all wrappers on
      first sight of a signature and binds the best match — and writes
      one provenance-tagged NDJSON tuple per page to stdout (or --out)
      in strict corpus order: {source, wrapper, wrapper_version,
      wrapper_revision, byte_offsets, fields}. Pages no wrapper matched
      go to --unrouted (or inline as error lines); nothing is silently
      dropped. --wrapper forces every page through one wrapper;
      --route-sample pins the sample FILE's signature to wrapper NAME
      up front (repeatable), bypassing the probe for that template
      family; --workers (default 4) sets the fan-out. --tuple-wrapper
      adds a trained tuple wrapper (from wrapper-train --tuple) to the
      routing pool under NAME (repeatable); pages it wins emit arity-k
      records with one byte-offset/field pair per marker. --signatures
      persists the router's probe-and-bind table: bindings load from
      FILE when it exists (skipping the probe for known page families)
      and the table is written back after the run. The run summary
      prints to stderr.

  rextract query <query.json> <page.html>... [--wrappers DIR]
                 [--strategy sort-merge|nested-loop] [--out FILE]
      Evaluate a span-relational query against pages. The query file
      names sources — installed wrappers (\"wrapper\": NAME, resolved
      from --wrappers) or inline expressions (\"alphabet\" + \"expr\")
      — and an algebra plan of project/union/join over them, e.g.
        {\"sources\":[{\"var\":\"field\",\"wrapper\":\"search\"},
          {\"var\":\"form\",\"alphabet\":\"FORM /FORM\",
           \"expr\":\"[^FORM]* <FORM> .*\"}],
         \"plan\":{\"op\":\"join\",\"left\":{\"op\":\"leaf\",\"var\":\"form\"},
           \"right\":{\"op\":\"leaf\",\"var\":\"field\"},
           \"preds\":[{\"pred\":\"before\",\"left\":\"form\",\"right\":\"field\"}]}}
      Each result row prints as one NDJSON record to stdout (or --out)
      with byte-offset provenance per variable; failed pages yield
      inline error lines. --strategy picks the join algorithm (the two
      produce byte-identical output; nested-loop is the oracle).

  rextract serve [--addr HOST:PORT] [--workers N] [--queue N]
                 [--batch-max N] [--wrapper-dir DIR] [--op-cache-cap N|none]
                 [--keepalive-ms N] [--deadline-ms N]
                 [--drain-timeout-ms N] [--drift-window N]
                 [--drift-threshold RATE] [--drift-strict]
                 [--repair-backoff-ms N] [--fault NAME=SPEC]...
      Run the extraction daemon: POST /extract, POST /wrappers/{name},
      GET /healthz, GET /metrics, POST /shutdown. Loads *.wrapper
      artifacts from --wrapper-dir at boot and on POST /reload.
      The core is an epoll readiness loop: pipelined HTTP/1.1 requests
      are parsed together and same-wrapper /extract requests coalesce
      into batches of up to --batch-max documents per worker trip.
      Each wrapper's failure and empty-result rates are watched over a
      sliding window of --drift-window pages (0 disables); past
      --drift-threshold the wrapper is flagged Degraded and the daemon
      retrains it online from retained evidence pages, retrying with
      exponential backoff from --repair-backoff-ms. --drift-strict
      turns best-effort serving of a drifted wrapper into 503s.
      Defaults: 127.0.0.1:7878, workers = min(cores, 8), queue 128,
      batch max 32, op cache bounded at 16384 entries, keep-alive
      5000 ms, request deadline 10000 ms, drain timeout 5000 ms,
      drift window 32, drift threshold 0.9, repair backoff 200 ms.
      --fault arms a failpoint (e.g. 'extract.slow=prob(0.3,42):sleep(30)';
      repeatable) and needs a binary built with --features failpoints.

  rextract demo
      Run the paper's Section 7 worked example end to end.

OPTIONS:
  --stats
      After any command, print the interned language store's cache
      counters (hits, misses, interned languages) to stderr, with
      per-shard size and lock-contention columns for the sharded
      op cache.
";

fn need<'a>(args: &'a [String], n: usize, what: &str) -> Result<&'a str, String> {
    args.get(n)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument: {what}\n\n{USAGE}"))
}

/// `rextract tokenize <file.html>`
pub fn tokenize(args: &[String]) -> Result<(), String> {
    let path = need(args, 0, "<file.html>")?;
    let html = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let entries = to_names(&html_tokenize(&html), &SeqConfig::tags_only());
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    println!("{}", names.join(" "));
    Ok(())
}

fn parse_expr(args: &[String]) -> Result<(Alphabet, ExtractionExpr), String> {
    let alphabet_text = need(args, 0, "<alphabet>")?;
    let expr_text = need(args, 1, "<expression>")?;
    let sigma = Alphabet::new(alphabet_text.split_whitespace().map(String::from));
    let expr = ExtractionExpr::parse(&sigma, expr_text).map_err(|e| e.to_string())?;
    Ok((sigma, expr))
}

/// `rextract analyze <alphabet> <expression>`
pub fn analyze(args: &[String]) -> Result<(), String> {
    let (sigma, expr) = parse_expr(args)?;
    println!("expression : {}", expr.to_text());
    match expr.ambiguity_witness() {
        Some(w) => {
            println!("ambiguous  : yes");
            println!(
                "witness    : {:?} (marker at {} or {})",
                sigma.syms_to_str(&w.word),
                w.first_split,
                w.second_split
            );
            return Ok(());
        }
        None => println!("ambiguous  : no"),
    }
    match expr.maximality() {
        MaximalityStatus::Maximal => println!("maximal    : yes"),
        MaximalityStatus::NonMaximal(w) => println!(
            "maximal    : no ({:?} side can absorb {:?})",
            w.side,
            sigma.syms_to_str(&w.string)
        ),
        MaximalityStatus::Ambiguous => unreachable!("checked above"),
    }
    println!(
        "marker bound (left side): {:?}",
        expr.left().max_marker_count(expr.marker())
    );
    Ok(())
}

/// `rextract maximize <alphabet> <expression>`
pub fn maximize(args: &[String]) -> Result<(), String> {
    let (_sigma, expr) = parse_expr(args)?;
    let out = maximize_one_sided(&expr).map_err(|e| e.to_string())?;
    println!("{}", out.to_text());
    Ok(())
}

/// `rextract extract <alphabet> <expression> <document>`
pub fn extract(args: &[String]) -> Result<(), String> {
    let (sigma, expr) = parse_expr(args)?;
    let doc_text = need(args, 2, "<document>")?;
    let doc = sigma
        .str_to_syms(doc_text)
        .map_err(|bad| format!("unknown document symbol {bad:?}"))?;
    let extractor = Extractor::compile(&expr);
    eprint_engine_info(extractor.engine_info());
    match extractor.extract_with(&doc, &mut ExtractScratch::new()) {
        Ok(hit) => {
            println!("{}", hit.position);
            Ok(())
        }
        Err(e) => Err(format!("{e:?}")),
    }
}

/// `rextract learn <sample>...`
pub fn learn(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        return Err(format!("need at least one sample\n\n{USAGE}"));
    }
    let samples: Vec<MarkedSeq> = args
        .iter()
        .map(|a| {
            MarkedSeq::parse(a)
                .ok_or_else(|| format!("bad sample (need exactly one <target>): {a:?}"))
        })
        .collect::<Result<_, _>>()?;
    let mut vocab = Vocabulary::new();
    for s in &samples {
        for n in &s.names {
            vocab.observe_name(n);
        }
    }
    let sigma = vocab.alphabet();
    let merged = merge_samples(&sigma, &samples).map_err(|e| e.to_string())?;
    let expr = merged.to_expr();
    println!("merged     : {}", expr.to_text());
    println!("unambiguous: {}", expr.is_unambiguous());
    match merged.maximize() {
        Ok(maximal) => {
            println!("maximized  : {}", maximal.to_text());
            println!("maximal    : {}", maximal.is_maximal());
        }
        Err(e) => println!("maximized  : (failed: {e})"),
    }
    Ok(())
}

/// `rextract wrapper-train [--tuple] <out.wrapper> <sample.html>...`
pub fn wrapper_train(args: &[String]) -> Result<(), String> {
    use rextract_wrapper::wrapper::{TrainPage, Wrapper, WrapperConfig};
    use rextract_wrapper::{MultiTrainPage, TupleWrapper};
    let (tuple, args) = match args.first().map(String::as_str) {
        Some("--tuple") => (true, &args[1..]),
        _ => (false, args),
    };
    let out_path = need(args, 0, "<out.wrapper>")?;
    let sample_paths = &args[1..];
    if sample_paths.is_empty() {
        return Err(format!("need at least one sample file\n\n{USAGE}"));
    }
    let mut pages = Vec::with_capacity(sample_paths.len());
    for path in sample_paths {
        let html = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let tokens = html_tokenize(&html);
        let targets: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.attr("data-target").is_some())
            .map(|(i, _)| i)
            .collect();
        if targets.is_empty() {
            return Err(format!(
                "{path}: no element carries a data-target attribute"
            ));
        }
        if tuple {
            pages.push(MultiTrainPage { tokens, targets });
        } else {
            // Single-target training reads the first mark, as always.
            let target = targets[0];
            pages.push(MultiTrainPage {
                tokens,
                targets: vec![target],
            });
        }
    }
    let out = std::path::Path::new(out_path);
    if tuple {
        let arity = pages[0].targets.len();
        if let Some((i, p)) = pages
            .iter()
            .enumerate()
            .find(|(_, p)| p.targets.len() != arity)
        {
            return Err(format!(
                "{}: {} data-target marks, but {} has {arity} — every sample must mark the same record",
                sample_paths[i],
                p.targets.len(),
                sample_paths[0],
            ));
        }
        let wrapper = TupleWrapper::train(&pages, WrapperConfig::default())
            .map_err(|e| format!("training failed: {e}"))?;
        rextract_wrapper::persist::save_artifact(out, &wrapper.export())
            .map_err(|e| format!("writing {out_path}: {e}"))?;
        println!(
            "trained on {} samples (arity {})",
            pages.len(),
            wrapper.arity()
        );
        println!("maximized : {}", wrapper.is_maximized());
        println!("expression: {}", wrapper.expr().to_text());
        println!("saved to  : {out_path}");
    } else {
        let pages: Vec<TrainPage> = pages
            .into_iter()
            .map(|p| TrainPage {
                tokens: p.tokens,
                target: p.targets[0],
            })
            .collect();
        let wrapper = Wrapper::train(&pages, WrapperConfig::default())
            .map_err(|e| format!("training failed: {e}"))?;
        rextract_wrapper::persist::save_artifact(out, &wrapper.export())
            .map_err(|e| format!("writing {out_path}: {e}"))?;
        println!("trained on {} samples", pages.len());
        println!("maximized : {}", wrapper.is_maximized());
        println!("expression: {}", wrapper.expr().to_text());
        println!("saved to  : {out_path}");
    }
    Ok(())
}

/// `rextract wrapper-extract <in.wrapper> <page.html>`
pub fn wrapper_extract(args: &[String]) -> Result<(), String> {
    use rextract_wrapper::wrapper::Wrapper;
    let wrapper_path = need(args, 0, "<in.wrapper>")?;
    let page_path = need(args, 1, "<page.html>")?;
    let artifact = std::fs::read_to_string(wrapper_path)
        .map_err(|e| format!("reading {wrapper_path}: {e}"))?;
    let wrapper = Wrapper::import(&artifact).map_err(|e| e.to_string())?;
    eprint_engine_info(wrapper.engine_info());
    let html =
        std::fs::read_to_string(page_path).map_err(|e| format!("reading {page_path}: {e}"))?;
    let tokens = html_tokenize(&html);
    let idx = wrapper
        .extract_target(&tokens)
        .map_err(|e| format!("extraction failed: {e}"))?;
    println!("token {idx}: {}", tokens[idx]);
    Ok(())
}

/// `rextract pipeline --wrappers DIR (--corpus DIR | --manifest FILE)
/// [--workers N] [--wrapper NAME] [--route-sample NAME=FILE]...
/// [--tuple-wrapper NAME=FILE]... [--signatures FILE]
/// [--out FILE] [--unrouted FILE]`
pub fn pipeline(args: &[String]) -> Result<(), String> {
    use rextract_corpus::{run_pipeline, CorpusSource, PipelineConfig};
    use rextract_serve::Registry;
    use rextract_wrapper::TupleWrapper;
    use std::io::Write;
    use std::sync::Arc;

    let mut wrapper_dir: Option<String> = None;
    let mut source: Option<CorpusSource> = None;
    let mut workers = 4usize;
    let mut wrapper_override: Option<String> = None;
    let mut route_samples: Vec<(String, std::path::PathBuf)> = Vec::new();
    let mut tuple_wrappers: Vec<(String, Arc<TupleWrapper>)> = Vec::new();
    let mut signatures: Option<std::path::PathBuf> = None;
    let mut out_path: Option<String> = None;
    let mut unrouted_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value ({what})"))
        };
        match flag.as_str() {
            "--wrappers" => wrapper_dir = Some(value("directory of *.wrapper artifacts")?.into()),
            "--corpus" => source = Some(CorpusSource::Dir(value("directory of pages")?.into())),
            "--manifest" => {
                source = Some(CorpusSource::Manifest(
                    value("newline-delimited file")?.into(),
                ))
            }
            "--workers" => {
                workers = value("thread count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?
                    .max(1)
            }
            "--wrapper" => wrapper_override = Some(value("wrapper name")?.into()),
            "--route-sample" => {
                let spec = value("NAME=FILE")?;
                let (name, file) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--route-sample {spec:?}: expected NAME=FILE"))?;
                if name.is_empty() || file.is_empty() {
                    return Err(format!("--route-sample {spec:?}: expected NAME=FILE"));
                }
                route_samples.push((name.to_string(), file.into()));
            }
            "--tuple-wrapper" => {
                let spec = value("NAME=FILE")?;
                let (name, file) = spec
                    .split_once('=')
                    .filter(|(n, f)| !n.is_empty() && !f.is_empty())
                    .ok_or_else(|| format!("--tuple-wrapper {spec:?}: expected NAME=FILE"))?;
                let tw = TupleWrapper::load(std::path::Path::new(file))
                    .map_err(|e| format!("--tuple-wrapper {name}: {e}"))?;
                tuple_wrappers.push((name.to_string(), Arc::new(tw)));
            }
            "--signatures" => signatures = Some(value("signature bindings file")?.into()),
            "--out" => out_path = Some(value("output file")?.into()),
            "--unrouted" => unrouted_path = Some(value("sidecar file")?.into()),
            other => return Err(format!("unknown flag {other:?}; try `rextract help`")),
        }
    }
    let wrapper_dir = wrapper_dir.ok_or_else(|| format!("missing --wrappers DIR\n\n{USAGE}"))?;
    let source =
        source.ok_or_else(|| format!("missing --corpus DIR or --manifest FILE\n\n{USAGE}"))?;

    // Same loading path as the daemon: per-artifact validation, corrupt
    // files quarantined and reported, the rest served.
    let registry = Registry::new(Some(wrapper_dir.clone().into()));
    let scan = registry
        .load_dir()
        .map_err(|e| format!("scanning {wrapper_dir}: {e}"))?;
    for (file, err) in &scan.errors {
        eprintln!("rextract: skipping {file}: {err}");
    }
    let wrappers = registry.entries();
    if wrappers.is_empty() && tuple_wrappers.is_empty() {
        return Err(format!("no usable *.wrapper artifacts in {wrapper_dir}"));
    }

    let make_writer = |path: &str| -> Result<Box<dyn Write>, String> {
        let f = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
        Ok(Box::new(std::io::BufWriter::new(f)))
    };
    let mut out: Box<dyn Write> = match &out_path {
        Some(p) => make_writer(p)?,
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    let mut sidecar: Option<Box<dyn Write>> = match &unrouted_path {
        Some(p) => Some(make_writer(p)?),
        None => None,
    };

    let cfg = PipelineConfig {
        workers,
        wrapper_override,
        route_samples,
        tuple_wrappers,
        signatures,
        ..PipelineConfig::new(source)
    };
    // The `as` casts re-coerce the boxes' `dyn Write + 'static` objects
    // down to the call's local lifetime (coercion does not see through
    // `Option`, so the closure does it per-element).
    let report = run_pipeline(
        &cfg,
        wrappers,
        &mut *out as &mut dyn Write,
        sidecar.as_deref_mut().map(|w| w as &mut dyn Write),
    )
    .map_err(|e| e.to_string())?;
    out.flush().map_err(|e| format!("flushing output: {e}"))?;
    if let Some(s) = &mut sidecar {
        s.flush().map_err(|e| format!("flushing sidecar: {e}"))?;
    }
    eprintln!("rextract pipeline: {}", report.summary());
    Ok(())
}

/// `rextract query <query.json> <page.html>... [--wrappers DIR]
/// [--strategy sort-merge|nested-loop] [--out FILE]`
pub fn query(args: &[String]) -> Result<(), String> {
    use rextract_corpus::sink::{error_line, query_line};
    use rextract_extraction::{JoinStrategy, QueryDef};
    use rextract_serve::Registry;
    use rextract_wrapper::{evaluate_query_with, WrapperScratch};
    use std::io::Write;

    let mut wrapper_dir: Option<String> = None;
    let mut strategy = JoinStrategy::SortMerge;
    let mut strategy_name = "sort-merge";
    let mut out_path: Option<String> = None;
    let mut positional: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{arg} needs a value ({what})"))
        };
        match arg.as_str() {
            "--wrappers" => wrapper_dir = Some(value("directory of *.wrapper artifacts")?.into()),
            "--strategy" => {
                strategy = match value("sort-merge or nested-loop")? {
                    "sort-merge" => JoinStrategy::SortMerge,
                    "nested-loop" => {
                        strategy_name = "nested-loop";
                        JoinStrategy::NestedLoop
                    }
                    other => return Err(format!("--strategy: unknown strategy {other:?}")),
                }
            }
            "--out" => out_path = Some(value("output file")?.into()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?}; try `rextract help`"))
            }
            path => positional.push(path),
        }
    }
    let (&query_path, page_paths) = positional
        .split_first()
        .ok_or_else(|| format!("missing <query.json>\n\n{USAGE}"))?;
    if page_paths.is_empty() {
        return Err(format!("need at least one <page.html>\n\n{USAGE}"));
    }
    let text =
        std::fs::read_to_string(query_path).map_err(|e| format!("reading {query_path}: {e}"))?;
    let def = QueryDef::parse(&text).map_err(|e| format!("{query_path}: {e}"))?;
    let query_name = std::path::Path::new(query_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(query_path);

    // Wrapper sources bind against the same registry scan the daemon and
    // pipeline use; expression-only queries need no --wrappers at all.
    let registry = Registry::new(wrapper_dir.as_ref().map(Into::into));
    if let Some(dir) = &wrapper_dir {
        let scan = registry
            .load_dir()
            .map_err(|e| format!("scanning {dir}: {e}"))?;
        for (file, err) in &scan.errors {
            eprintln!("rextract: skipping {file}: {err}");
        }
    }
    let lookup = |n: &str| registry.get(n);

    let mut out: Box<dyn Write> = match &out_path {
        Some(p) => {
            let f = std::fs::File::create(p).map_err(|e| format!("creating {p}: {e}"))?;
            Box::new(std::io::BufWriter::new(f))
        }
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    let (mut records, mut failures) = (0usize, 0usize);
    // One scratch across the whole page set: buffers and the tag memo
    // warm up on the first page and stay off the allocator after.
    let mut scratch = WrapperScratch::new();
    for &path in page_paths {
        // A bad page yields an inline error line, never a silent drop —
        // the pipeline's contract, kept for ad-hoc query runs.
        let html = match std::fs::read_to_string(path) {
            Ok(h) => h,
            Err(e) => {
                failures += 1;
                writeln!(out, "{}", error_line(path, &format!("read: {e}")))
                    .map_err(|e| format!("writing output: {e}"))?;
                continue;
            }
        };
        let (tokens, spans) = rextract_html::tokenize_spanned(&html);
        match evaluate_query_with(&def, &tokens, &lookup, strategy, &mut scratch) {
            Ok(rel) => {
                let vars: Vec<&str> = rel.vars().iter().map(String::as_str).collect();
                for row in rel.rows() {
                    let offsets: Vec<(usize, usize)> = row
                        .iter()
                        .map(|s| (spans[s.start].0, spans[s.end - 1].1))
                        .collect();
                    let fields: Vec<&str> = offsets.iter().map(|&(s, e)| &html[s..e]).collect();
                    writeln!(
                        out,
                        "{}",
                        query_line(path, query_name, &vars, &offsets, &fields)
                    )
                    .map_err(|e| format!("writing output: {e}"))?;
                    records += 1;
                }
            }
            Err(e) => {
                failures += 1;
                writeln!(out, "{}", error_line(path, &e.to_string()))
                    .map_err(|e| format!("writing output: {e}"))?;
            }
        }
    }
    out.flush().map_err(|e| format!("flushing output: {e}"))?;
    eprintln!(
        "rextract query: {} pages, {records} records, {failures} failures ({strategy_name} join)",
        page_paths.len(),
    );
    Ok(())
}

/// `rextract serve [--addr HOST:PORT] [--workers N] [--queue N]
/// [--wrapper-dir DIR] [--op-cache-cap N|none] [--keepalive-ms N]`
pub fn serve(args: &[String]) -> Result<(), String> {
    use rextract_serve::ServeConfig;
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value ({what})"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("HOST:PORT")?.to_string(),
            "--workers" => {
                config.workers = value("thread count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--workers: {e}"))?
                    .max(1)
            }
            "--queue" => {
                config.queue_capacity = value("queue capacity")?
                    .parse::<usize>()
                    .map_err(|e| format!("--queue: {e}"))?
                    .max(1)
            }
            "--batch-max" => {
                config.batch_max = value("documents per batch")?
                    .parse::<usize>()
                    .map_err(|e| format!("--batch-max: {e}"))?
                    .max(1)
            }
            "--wrapper-dir" => config.wrapper_dir = Some(value("directory")?.into()),
            "--op-cache-cap" => {
                let v = value("entry count or `none`")?;
                config.op_cache_capacity = if v == "none" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("--op-cache-cap: {e}"))?)
                };
            }
            "--keepalive-ms" => {
                config.keepalive_timeout = std::time::Duration::from_millis(
                    value("milliseconds")?
                        .parse()
                        .map_err(|e| format!("--keepalive-ms: {e}"))?,
                )
            }
            "--deadline-ms" => {
                config.request_deadline = std::time::Duration::from_millis(
                    value("milliseconds")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--drift-window" => {
                config.drift_window = value("page count (0 disables)")?
                    .parse::<usize>()
                    .map_err(|e| format!("--drift-window: {e}"))?
            }
            "--drift-threshold" => {
                let t = value("rate in (0,1]")?
                    .parse::<f64>()
                    .map_err(|e| format!("--drift-threshold: {e}"))?;
                if !(t > 0.0 && t <= 1.0) {
                    return Err(format!("--drift-threshold: {t} not in (0,1]"));
                }
                config.drift_threshold = t;
            }
            "--drift-strict" => config.drift_strict = true,
            "--repair-backoff-ms" => {
                config.repair_backoff = std::time::Duration::from_millis(
                    value("milliseconds")?
                        .parse()
                        .map_err(|e| format!("--repair-backoff-ms: {e}"))?,
                )
            }
            "--drain-timeout-ms" => {
                config.drain_timeout = std::time::Duration::from_millis(
                    value("milliseconds")?
                        .parse()
                        .map_err(|e| format!("--drain-timeout-ms: {e}"))?,
                )
            }
            "--fault" => {
                let spec = value("NAME=TRIGGER:ACTION")?;
                if !rextract_faults::ENABLED {
                    return Err(format!(
                        "--fault {spec:?}: this binary was built without fault injection; \
                         rebuild with `cargo build -p rextract-cli --features failpoints`"
                    ));
                }
                rextract_faults::configure_spec(spec).map_err(|e| format!("--fault: {e}"))?;
                eprintln!("rextract: armed failpoint {spec}");
            }
            other => return Err(format!("unknown flag {other:?}; try `rextract help`")),
        }
    }
    let handle = rextract_serve::serve(config).map_err(|e| format!("starting daemon: {e}"))?;
    println!("listening on http://{}", handle.addr());
    println!("POST /shutdown (or SIGKILL) to stop");
    handle.join();
    println!("drained; bye");
    Ok(())
}

/// `rextract demo`
pub fn demo(_args: &[String]) -> Result<(), String> {
    let page1 = "P H1 /H1 P FORM INPUT <INPUT> BR INPUT INPUT /FORM /P";
    let page2 = "TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR \
                 TR TD FORM INPUT <INPUT> INPUT BR INPUT /FORM /TD /TR /TABLE";
    println!("Section 7 worked example (Figure 1 tag sequences)\n");
    println!("page 1: {page1}");
    println!("page 2: {page2}\n");
    learn(&[page1.to_string(), page2.to_string()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_classifies() {
        assert!(analyze(&["p q".into(), "(q p)* <p> .*".into()]).is_ok());
        assert!(analyze(&["p q".into(), "p* <p> p* q".into()]).is_ok());
        assert!(analyze(&["p q".into(), "<z>".into()]).is_err());
        assert!(analyze(&["p q".into()]).is_err());
    }

    #[test]
    fn maximize_handles_both_shapes() {
        assert!(maximize(&["p q".into(), "q p <p> .*".into()]).is_ok());
        assert!(maximize(&["p q".into(), ".* <p> q".into()]).is_ok());
        assert!(maximize(&["p q".into(), "q <p> q".into()]).is_err());
    }

    #[test]
    fn extract_prints_position_or_errors() {
        assert!(extract(&["p q".into(), "[^p]* <p> .*".into(), "q q p q".into()]).is_ok());
        assert!(extract(&["p q".into(), "[^p]* <p> .*".into(), "q q".into()]).is_err());
        assert!(extract(&["p q".into(), "[^p]* <p> .*".into(), "q z".into()]).is_err());
    }

    #[test]
    fn learn_merges_samples() {
        assert!(learn(&[
            "P FORM INPUT <INPUT>".into(),
            "TD FORM TD INPUT <INPUT>".into()
        ])
        .is_ok());
        assert!(learn(&[]).is_err());
        assert!(learn(&["no target here".into()]).is_err());
    }

    #[test]
    fn demo_runs() {
        assert!(demo(&[]).is_ok());
    }

    #[test]
    fn wrapper_train_and_extract_round_trip() {
        let dir = std::env::temp_dir().join("rextract-cli-wrapper-test");
        std::fs::create_dir_all(&dir).unwrap();
        let s1 = dir.join("s1.html");
        let s2 = dir.join("s2.html");
        let out = dir.join("site.wrapper");
        let page = dir.join("page.html");
        std::fs::write(
            &s1,
            "<p><h1>Shop</h1><form><input type=\"image\">\
             <input type=\"text\" data-target></form>",
        )
        .unwrap();
        std::fs::write(
            &s2,
            "<table><tr><td><form><input type=\"image\">\
             <input type=\"text\" data-target><input type=\"radio\"></form></td></tr></table>",
        )
        .unwrap();
        // New layout, no data-target marking.
        std::fs::write(
            &page,
            "<table><tr><td>ad</td></tr><tr><td><form><input type=\"image\">\
             <input type=\"text\"><input type=\"radio\"></form></td></tr></table>",
        )
        .unwrap();
        wrapper_train(&[
            out.display().to_string(),
            s1.display().to_string(),
            s2.display().to_string(),
        ])
        .unwrap();
        wrapper_extract(&[out.display().to_string(), page.display().to_string()]).unwrap();
        // Error paths.
        assert!(wrapper_train(&[out.display().to_string()]).is_err());
        assert!(wrapper_extract(&[out.display().to_string()]).is_err());
        assert!(
            wrapper_extract(&["/nonexistent.wrapper".into(), page.display().to_string()]).is_err()
        );
        // Sample without a data-target attribute is rejected.
        let bad = dir.join("bad.html");
        std::fs::write(&bad, "<p>no target</p>").unwrap();
        let err =
            wrapper_train(&[out.display().to_string(), bad.display().to_string()]).unwrap_err();
        assert!(err.contains("data-target"));
    }

    #[test]
    fn pipeline_end_to_end_over_trained_wrapper() {
        use rextract_wrapper::site::{SiteConfig, SiteGenerator};

        let dir = std::env::temp_dir().join(format!("rextract-cli-pipe-{}", std::process::id()));
        let wrappers = dir.join("wrappers");
        let corpus = dir.join("corpus");
        std::fs::create_dir_all(&wrappers).unwrap();
        std::fs::create_dir_all(&corpus).unwrap();

        // Train through the real wrapper-train path (data-target marks).
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 7,
            ..SiteConfig::default()
        });
        let mut train_args = vec![wrappers.join("search.wrapper").display().to_string()];
        for i in 0..3 {
            let p = g.page();
            let mut html = p.html();
            // Mark the target token by splicing data-target into it.
            let (tokens, spans) = rextract_html::tokenize_spanned(&html);
            assert_eq!(tokens.len(), p.tokens.len());
            let (s, _) = spans[p.target];
            let insert = html[s..]
                .find(' ')
                .map(|o| s + o)
                .unwrap_or_else(|| html[s..].find('>').map(|o| s + o).unwrap());
            html.insert_str(insert, " data-target");
            let sample = dir.join(format!("sample{i}.html"));
            std::fs::write(&sample, html).unwrap();
            train_args.push(sample.display().to_string());
        }
        wrapper_train(&train_args).unwrap();

        for i in 0..8 {
            std::fs::write(corpus.join(format!("p{i}.html")), g.page().html()).unwrap();
        }
        let out = dir.join("tuples.ndjson");
        let side = dir.join("unrouted.ndjson");
        pipeline(&[
            "--wrappers".into(),
            wrappers.display().to_string(),
            "--corpus".into(),
            corpus.display().to_string(),
            "--workers".into(),
            "2".into(),
            "--out".into(),
            out.display().to_string(),
            "--unrouted".into(),
            side.display().to_string(),
        ])
        .unwrap();
        let tuples = std::fs::read_to_string(&out).unwrap();
        let side = std::fs::read_to_string(&side).unwrap();
        assert_eq!(
            tuples.lines().count() + side.lines().count(),
            8,
            "every page accounted: {tuples}{side}"
        );
        assert!(
            tuples.contains("\"wrapper\":\"search\"") && tuples.contains("\"byte_offsets\":"),
            "{tuples}"
        );

        // Flag errors fail before any I/O.
        assert!(pipeline(&[]).is_err());
        assert!(pipeline(&["--corpus".into(), corpus.display().to_string()]).is_err());
        assert!(pipeline(&["--bogus".into()]).is_err());
        let err = pipeline(&[
            "--wrappers".into(),
            corpus.display().to_string(), // no artifacts here
            "--corpus".into(),
            corpus.display().to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("no usable"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Splice `data-target` marks into the page bytes at `targets`.
    fn marked(html: &str, targets: &[usize]) -> String {
        let mut html = html.to_string();
        let (_, spans) = rextract_html::tokenize_spanned(&html);
        let mut idxs: Vec<usize> = targets.to_vec();
        idxs.sort_unstable_by(|a, b| b.cmp(a)); // splice back-to-front
        for &t in &idxs {
            let (s, _) = spans[t];
            let end = s + html[s..].find('>').unwrap();
            let insert = html[s..end].find(' ').map(|o| s + o).unwrap_or(end);
            html.insert_str(insert, " data-target");
        }
        html
    }

    #[test]
    fn tuple_train_signature_dump_and_query_end_to_end() {
        use rextract_wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
        let dir = std::env::temp_dir().join(format!("rextract-cli-query-{}", std::process::id()));
        let wrappers = dir.join("wrappers");
        let corpus = dir.join("corpus");
        let empty = dir.join("no-artifacts");
        for d in [&wrappers, &corpus, &empty] {
            std::fs::create_dir_all(d).unwrap();
        }
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 31,
            ..SiteConfig::default()
        });

        // Train a tuple wrapper (FORM + INPUT marked) and a single-target
        // wrapper from the same pages, both through the real CLI path.
        let tuple_artifact = dir.join("record.tuple");
        let mut tuple_args = vec!["--tuple".to_string(), tuple_artifact.display().to_string()];
        let mut single_args = vec![wrappers.join("search.wrapper").display().to_string()];
        for (i, &style) in [PageStyle::Plain, PageStyle::TableEmbedded, PageStyle::Busy]
            .iter()
            .enumerate()
        {
            let p = g.page_with_style(style);
            let form = p
                .tokens
                .iter()
                .position(|t| t.tag_name() == Some("FORM"))
                .unwrap();
            let two = dir.join(format!("two{i}.html"));
            std::fs::write(&two, marked(&p.html(), &[form, p.target])).unwrap();
            tuple_args.push(two.display().to_string());
            let one = dir.join(format!("one{i}.html"));
            std::fs::write(&one, marked(&p.html(), &[p.target])).unwrap();
            single_args.push(one.display().to_string());
        }
        wrapper_train(&tuple_args).unwrap();
        wrapper_train(&single_args).unwrap();

        // Inconsistent mark counts across samples are rejected up front.
        let err = wrapper_train(&[
            "--tuple".into(),
            tuple_artifact.display().to_string(),
            tuple_args[2].clone(),
            single_args[1].clone(),
        ])
        .unwrap_err();
        assert!(err.contains("data-target marks"), "{err}");

        // Pipeline with the tuple wrapper alone: arity-2 records, and the
        // probe-and-bind table dumped to --signatures.
        let mut page_paths = Vec::new();
        for i in 0..6 {
            let path = corpus.join(format!("p{i}.html"));
            std::fs::write(&path, g.page().html()).unwrap();
            page_paths.push(path.display().to_string());
        }
        let sigs = dir.join("bindings.sig");
        let out = dir.join("tuples.ndjson");
        let run = |out: &std::path::Path| {
            pipeline(&[
                "--wrappers".into(),
                empty.display().to_string(),
                "--tuple-wrapper".into(),
                format!("record={}", tuple_artifact.display()),
                "--signatures".into(),
                sigs.display().to_string(),
                "--corpus".into(),
                corpus.display().to_string(),
                "--out".into(),
                out.display().to_string(),
            ])
            .unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        let tuples = run(&out);
        assert!(
            tuples.contains("\"wrapper\":\"record\"") && tuples.contains("],["),
            "expected arity-2 records: {tuples}"
        );
        let dump = std::fs::read_to_string(&sigs).unwrap();
        assert!(dump.starts_with("rextract-signatures v1"), "{dump}");
        assert!(dump.contains("record"), "{dump}");
        // Warm start from the dump: byte-identical output.
        assert_eq!(tuples, run(&dir.join("tuples2.ndjson")));

        // A missing tuple artifact fails at flag-parse time.
        let err = pipeline(&[
            "--tuple-wrapper".into(),
            format!("ghost={}", dir.join("nope.tuple").display()),
        ])
        .unwrap_err();
        assert!(err.contains("--tuple-wrapper ghost"), "{err}");

        // Query: wrapper source + inline expression joined by document
        // order, evaluated over the corpus pages via the CLI.
        let qfile = dir.join("pair.json");
        std::fs::write(
            &qfile,
            r#"{
              "sources": [
                {"var": "field", "wrapper": "search"},
                {"var": "form", "alphabet": "FORM /FORM", "expr": "[^FORM]* <FORM> .*"}
              ],
              "plan": {
                "op": "join",
                "left": {"op": "leaf", "var": "form"},
                "right": {"op": "leaf", "var": "field"},
                "preds": [{"pred": "before", "left": "form", "right": "field"}]
              }
            }"#,
        )
        .unwrap();
        let qout = dir.join("records.ndjson");
        let mut qargs = vec![
            qfile.display().to_string(),
            "--wrappers".into(),
            wrappers.display().to_string(),
            "--out".into(),
            qout.display().to_string(),
        ];
        qargs.extend(page_paths.iter().cloned());
        qargs.push(dir.join("missing.html").display().to_string());
        query(&qargs).unwrap();
        let records = std::fs::read_to_string(&qout).unwrap();
        let rows: Vec<&str> = records.lines().collect();
        assert_eq!(rows.len(), 7, "6 pages + 1 read error: {records}");
        assert!(
            rows[0].contains("\"query\":\"pair\"")
                && rows[0].contains("\"vars\":[\"form\",\"field\"]")
                && rows[0].contains("<form"),
            "{records}"
        );
        assert!(rows[6].contains("\"error\":\"read:"), "{records}");

        // The nested-loop oracle renders byte-identical records.
        let oracle_out = dir.join("oracle.ndjson");
        let mut oargs = qargs.clone();
        let at = oargs.iter().position(|a| a == "--out").unwrap();
        oargs[at + 1] = oracle_out.display().to_string();
        oargs.push("--strategy".into());
        oargs.push("nested-loop".into());
        query(&oargs).unwrap();
        assert_eq!(records, std::fs::read_to_string(&oracle_out).unwrap());

        // Flag and argument errors.
        assert!(query(&[]).is_err());
        assert!(query(&[qfile.display().to_string()]).is_err(), "no pages");
        assert!(query(&["--strategy".into(), "zigzag".into()]).is_err());
        assert!(query(&["--bogus".into()]).is_err());
        assert!(query(&["/nonexistent.json".into(), "p.html".into()]).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_flag_errors_do_not_boot() {
        // Flag parsing fails before any socket is bound.
        assert!(serve(&["--workers".into()]).is_err());
        assert!(serve(&["--deadline-ms".into(), "abc".into()]).is_err());
        assert!(serve(&["--drain-timeout-ms".into()]).is_err());
        // --fault: rejected outright without the feature, and a malformed
        // spec is rejected with it — either way serve() returns early.
        let err = serve(&["--fault".into(), "not-a-spec".into()]).unwrap_err();
        if rextract_faults::ENABLED {
            assert!(err.contains("--fault"), "{err}");
        } else {
            assert!(err.contains("failpoints"), "{err}");
        }
    }

    #[test]
    fn tokenize_reads_files() {
        let dir = std::env::temp_dir().join("rextract-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("page.html");
        std::fs::write(&path, "<p><form><input></form>").unwrap();
        assert!(tokenize(&[path.display().to_string()]).is_ok());
        assert!(tokenize(&["/nonexistent/file.html".into()]).is_err());
        assert!(tokenize(&[]).is_err());
    }
}
