//! `rextract` — command-line front end.
//!
//! ```text
//! rextract tokenize <file.html>                      tag sequence of a page
//! rextract analyze  <alphabet> <expression>          classify an expression
//! rextract maximize <alphabet> <expression>          Algorithm 6.2 / mirror
//! rextract extract  <alphabet> <expression> <doc>    locate the marker
//! rextract learn    <sample>...                      merge marked samples
//! rextract query    <query.json> <page.html>...      span-relational query
//! rextract serve    [--addr HOST:PORT] [...]         extraction daemon
//! rextract demo                                      the Figure 1 pipeline
//! ```
//!
//! Every command also accepts `--stats`, which prints the interned
//! language store's cache counters to stderr on exit.
//!
//! See `rextract help` for argument details. The library does the work;
//! this binary is arg parsing and printing only (std-only, no CLI deps).

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--stats` may appear anywhere; strip it before command dispatch.
    let show_stats = {
        let before = args.len();
        args.retain(|a| a != "--stats");
        args.len() != before
    };
    commands::set_show_stats(show_stats);
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => ("help", &[][..]),
    };
    let result = match cmd {
        "tokenize" => commands::tokenize(rest),
        "analyze" => commands::analyze(rest),
        "maximize" => commands::maximize(rest),
        "extract" => commands::extract(rest),
        "learn" => commands::learn(rest),
        "wrapper-train" => commands::wrapper_train(rest),
        "wrapper-extract" => commands::wrapper_extract(rest),
        "pipeline" => commands::pipeline(rest),
        "query" => commands::query(rest),
        "serve" => commands::serve(rest),
        "demo" => commands::demo(rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `rextract help`")),
    };
    if show_stats {
        eprint!("{}", rextract_automata::Store::stats().render());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
