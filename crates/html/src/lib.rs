//! # rextract-html
//!
//! A from-scratch HTML substrate for the paper's document model
//! (Section 3): web pages are abstracted to **sequences of tag tokens**
//! (`P H1 /H1 P FORM INPUT INPUT … /FORM`), and extraction expressions
//! operate on those sequences.
//!
//! * [`token`] — the token model (start/end tags, attributes, text,
//!   comments, doctype),
//! * [`tokenizer`] — a permissive streaming tokenizer (handles unclosed
//!   constructs, raw-text elements like `<script>`, attribute quoting
//!   styles),
//! * [`entities`] — character-reference decoding,
//! * [`seq`] — the tag-sequence abstraction: token stream → symbol-name
//!   sequence with a configurable level of detail, plus vocabulary
//!   collection for building [`Alphabet`]s over page corpora,
//! * [`writer`] — token stream → HTML text (perturbation round trips).
//!
//! ```
//! use rextract_html::{tokenizer::tokenize, seq::{SeqConfig, to_names}};
//!
//! let toks = tokenize("<p><h1>Shop</h1><form><input></form>");
//! let names = to_names(&toks, &SeqConfig::tags_only());
//! let seq: Vec<&str> = names.iter().map(|e| e.name.as_str()).collect();
//! assert_eq!(seq, ["P", "H1", "/H1", "FORM", "INPUT", "/FORM"]);
//! ```
//!
//! [`Alphabet`]: rextract_automata::Alphabet

pub mod entities;
pub mod seq;
pub mod token;
pub mod tokenizer;
pub mod writer;
pub mod xml;

pub use seq::{SeqConfig, SeqEntry};
pub use token::{Attribute, Token};
pub use tokenizer::{tokenize, tokenize_spanned, Span};
