//! The HTML token model.
//!
//! Tokens are the unit the paper's tag-sequence abstraction consumes. Tag
//! names are normalized to ASCII uppercase at construction (the paper
//! writes `FORM`, `INPUT`, `/TD`); attribute names to lowercase, HTML
//! style.

use std::fmt;

/// One `name[=value]` attribute of a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Lowercased attribute name.
    pub name: String,
    /// Decoded value; empty for boolean attributes like `checked`.
    pub value: String,
}

impl Attribute {
    /// Construct, normalizing the name to lowercase.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Attribute {
        Attribute {
            name: name.into().to_ascii_lowercase(),
            value: value.into(),
        }
    }
}

/// An HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<NAME attr=… >`; `self_closing` records a trailing `/`.
    StartTag {
        /// Uppercased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// `<input />`-style trailing slash.
        self_closing: bool,
    },
    /// `</NAME>`.
    EndTag {
        /// Uppercased tag name.
        name: String,
    },
    /// A run of character data (entity-decoded, whitespace preserved).
    Text(String),
    /// `<!-- … -->` contents.
    Comment(String),
    /// `<!DOCTYPE …>` contents.
    Doctype(String),
}

impl Token {
    /// A start tag with no attributes.
    pub fn start(name: &str) -> Token {
        Token::StartTag {
            name: name.to_ascii_uppercase(),
            attrs: Vec::new(),
            self_closing: false,
        }
    }

    /// A start tag with attributes.
    pub fn start_with(name: &str, attrs: Vec<Attribute>) -> Token {
        Token::StartTag {
            name: name.to_ascii_uppercase(),
            attrs,
            self_closing: false,
        }
    }

    /// An end tag.
    pub fn end(name: &str) -> Token {
        Token::EndTag {
            name: name.to_ascii_uppercase(),
        }
    }

    /// The tag name if this is a start or end tag.
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            Token::StartTag { name, .. } | Token::EndTag { name } => Some(name),
            _ => None,
        }
    }

    /// Look up an attribute value on a start tag.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match self {
            Token::StartTag { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// Is this tag a *void element* (never has an end tag)?
    pub fn is_void_element(&self) -> bool {
        matches!(
            self.tag_name(),
            Some(
                "AREA"
                    | "BASE"
                    | "BR"
                    | "COL"
                    | "EMBED"
                    | "HR"
                    | "IMG"
                    | "INPUT"
                    | "LINK"
                    | "META"
                    | "PARAM"
                    | "SOURCE"
                    | "TRACK"
                    | "WBR"
            )
        )
    }

    /// Is this a whitespace-only text token?
    pub fn is_blank_text(&self) -> bool {
        matches!(self, Token::Text(t) if t.chars().all(char::is_whitespace))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::StartTag { name, .. } => write!(f, "<{name}>"),
            Token::EndTag { name } => write!(f, "</{name}>"),
            Token::Text(t) => write!(f, "{t:?}"),
            Token::Comment(_) => write!(f, "<!--…-->"),
            Token::Doctype(_) => write!(f, "<!DOCTYPE>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_normalized() {
        assert_eq!(Token::start("form").tag_name(), Some("FORM"));
        assert_eq!(Token::end("Form").tag_name(), Some("FORM"));
        assert_eq!(Attribute::new("TYPE", "text").name, "type");
    }

    #[test]
    fn attribute_lookup() {
        let t = Token::start_with(
            "input",
            vec![
                Attribute::new("type", "radio"),
                Attribute::new("checked", ""),
            ],
        );
        assert_eq!(t.attr("type"), Some("radio"));
        assert_eq!(t.attr("checked"), Some(""));
        assert_eq!(t.attr("name"), None);
        assert_eq!(Token::Text("x".into()).attr("type"), None);
    }

    #[test]
    fn void_elements() {
        assert!(Token::start("input").is_void_element());
        assert!(Token::start("br").is_void_element());
        assert!(!Token::start("form").is_void_element());
        assert!(!Token::Text("input".into()).is_void_element());
    }

    #[test]
    fn blank_text_detection() {
        assert!(Token::Text("  \n\t".into()).is_blank_text());
        assert!(!Token::Text(" x ".into()).is_blank_text());
        assert!(!Token::start("p").is_blank_text());
    }
}
