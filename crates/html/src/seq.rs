//! The tag-sequence abstraction — Section 3 of the paper.
//!
//! Documents become strings over a token alphabet: start tags map to their
//! uppercase name (`FORM`), end tags to a slash-prefixed name (`/FORM`),
//! and — optionally — text runs to a `#text` pseudo-symbol and selected
//! attributes to `NAME@attr=value` refinement symbols ("it is easy to
//! enrich this model to take the tag attributes into account", Section 3).
//!
//! [`to_names`] produces the abstract sequence together with a back-map
//! into the token stream, so a marked target token can be located in the
//! symbol sequence and an extracted symbol mapped back to its token.
//! [`Vocabulary`] accumulates the names seen across a corpus and builds the
//! [`Alphabet`] the extraction layer needs.

use crate::token::Token;
use rextract_automata::{Alphabet, Symbol};
use std::collections::BTreeSet;

/// Configuration of the abstraction level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqConfig {
    /// Emit a `#text` symbol for non-blank text runs.
    pub include_text: bool,
    /// Emit `/NAME` symbols for end tags.
    pub include_end_tags: bool,
    /// For each `(tag, attr)` listed here, refine the start-tag symbol to
    /// `NAME@attr=value` when the attribute is present. Names are
    /// normalized (tag upper, attr lower).
    pub refine_attrs: Vec<(String, String)>,
}

impl SeqConfig {
    /// The paper's plain representation: tags and end tags only.
    pub fn tags_only() -> SeqConfig {
        SeqConfig {
            include_text: false,
            include_end_tags: true,
            refine_attrs: Vec::new(),
        }
    }

    /// Tags plus `#text` markers.
    pub fn with_text() -> SeqConfig {
        SeqConfig {
            include_text: true,
            include_end_tags: true,
            refine_attrs: Vec::new(),
        }
    }

    /// Add an attribute refinement, builder style.
    pub fn refine(mut self, tag: &str, attr: &str) -> SeqConfig {
        self.refine_attrs
            .push((tag.to_ascii_uppercase(), attr.to_ascii_lowercase()));
        self
    }
}

/// One element of the abstract sequence, with provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqEntry {
    /// The symbol name (e.g. `FORM`, `/TD`, `#text`, `INPUT@type=radio`).
    pub name: String,
    /// Index of the originating token in the token stream.
    pub token_index: usize,
}

/// Abstract a token stream into symbol names under `cfg`.
pub fn to_names(tokens: &[Token], cfg: &SeqConfig) -> Vec<SeqEntry> {
    let mut out = Vec::with_capacity(tokens.len());
    for (i, tok) in tokens.iter().enumerate() {
        let name = match tok {
            Token::StartTag { name, .. } => {
                let refined = cfg
                    .refine_attrs
                    .iter()
                    .find(|(t, a)| t == name && tok.attr(a).is_some())
                    .map(|(t, a)| {
                        let value = tok.attr(a).expect("checked present");
                        // Sanitize so refined names stay valid regex
                        // identifiers and whitespace-splittable alphabet
                        // entries.
                        let clean: String = value
                            .chars()
                            .map(|c| {
                                if c.is_alphanumeric() || matches!(c, '_' | '/' | ':' | '#') {
                                    c
                                } else {
                                    '_'
                                }
                            })
                            .collect();
                        format!("{t}@{a}={clean}")
                    });
                Some(refined.unwrap_or_else(|| name.clone()))
            }
            Token::EndTag { name } if cfg.include_end_tags => Some(format!("/{name}")),
            Token::EndTag { .. } => None,
            Token::Text(_) if cfg.include_text && !tok.is_blank_text() => Some("#text".to_string()),
            Token::Text(_) | Token::Comment(_) | Token::Doctype(_) => None,
        };
        if let Some(name) = name {
            out.push(SeqEntry {
                name,
                token_index: i,
            });
        }
    }
    out
}

/// A growing set of symbol names across a corpus, from which an
/// [`Alphabet`] is built. Deterministic (sorted) ordering, so equal corpora
/// give identical alphabets.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    names: BTreeSet<String>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Record every name in an abstracted document.
    pub fn observe(&mut self, entries: &[SeqEntry]) {
        for e in entries {
            self.names.insert(e.name.clone());
        }
    }

    /// Record a raw name (useful for symbols known a priori).
    pub fn observe_name(&mut self, name: &str) {
        self.names.insert(name.to_string());
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Build the alphabet.
    pub fn alphabet(&self) -> Alphabet {
        Alphabet::new(self.names.iter().cloned())
    }
}

/// Map an abstracted document to symbols of `alphabet`. Entries whose name
/// is missing from the alphabet are reported by index in `Err`.
pub fn entries_to_symbols(entries: &[SeqEntry], alphabet: &Alphabet) -> Result<Vec<Symbol>, usize> {
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| alphabet.try_sym(&e.name).ok_or(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    #[test]
    fn paper_section_3_representation() {
        // "P H1 /H1 P FORM INPUT INPUT … /FORM"-style abstraction.
        let html = "<p><h1>Virtual Supplier, Inc.</h1><p><form>\
                    <input><input></form>";
        let entries = to_names(&tokenize(html), &SeqConfig::tags_only());
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["P", "H1", "/H1", "P", "FORM", "INPUT", "INPUT", "/FORM"]
        );
    }

    #[test]
    fn text_symbols_when_enabled() {
        let html = "<td>Price</td><td> </td>";
        let entries = to_names(&tokenize(html), &SeqConfig::with_text());
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        // blank text run is dropped even with include_text
        assert_eq!(names, ["TD", "#text", "/TD", "TD", "/TD"]);
    }

    #[test]
    fn attribute_refinement() {
        let html = r#"<input type="radio"><input type="text"><input>"#;
        let cfg = SeqConfig::tags_only().refine("input", "TYPE");
        let entries = to_names(&tokenize(html), &cfg);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["INPUT@type=radio", "INPUT@type=text", "INPUT"]);
    }

    #[test]
    fn token_back_map_is_correct() {
        let html = "<!-- c --><p>hi</p>";
        let toks = tokenize(html);
        let entries = to_names(&toks, &SeqConfig::tags_only());
        // comment and text are skipped, but indices still point into toks
        for e in &entries {
            assert!(toks[e.token_index].tag_name().is_some());
        }
        assert_eq!(entries[0].token_index, 1); // <p> after the comment
    }

    #[test]
    fn vocabulary_builds_deterministic_alphabet() {
        let mut v = Vocabulary::new();
        let entries = to_names(
            &tokenize("<table><tr><td></td></tr></table>"),
            &SeqConfig::tags_only(),
        );
        v.observe(&entries);
        v.observe_name("FORM");
        let a1 = v.alphabet();
        let a2 = v.alphabet();
        assert!(a1.compatible(&a2));
        assert!(a1.try_sym("TABLE").is_some());
        assert!(a1.try_sym("/TD").is_some());
        assert!(a1.try_sym("FORM").is_some());
        assert_eq!(a1.len(), 7);
        assert!(!v.is_empty());
    }

    #[test]
    fn symbol_mapping_reports_unknown_names() {
        let entries = to_names(&tokenize("<p><b>"), &SeqConfig::tags_only());
        let mut v = Vocabulary::new();
        v.observe(&entries[..1]); // only P
        let alphabet = v.alphabet();
        assert_eq!(entries_to_symbols(&entries, &alphabet), Err(1));
        let full = {
            let mut v = Vocabulary::new();
            v.observe(&entries);
            v.alphabet()
        };
        let syms = entries_to_symbols(&entries, &full).unwrap();
        assert_eq!(syms.len(), 2);
        assert_eq!(full.name(syms[0]), "P");
    }

    #[test]
    fn end_tags_can_be_suppressed() {
        let cfg = SeqConfig {
            include_text: false,
            include_end_tags: false,
            refine_attrs: Vec::new(),
        };
        let entries = to_names(&tokenize("<p>x</p>"), &cfg);
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["P"]);
    }
}
