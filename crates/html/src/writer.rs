//! Token stream → HTML text.
//!
//! Used by the perturbation machinery: a document is tokenized, edited at
//! the token level (rows inserted, elements wrapped — Section 3's change
//! taxonomy), and re-rendered. Rendering is canonical (double-quoted
//! attributes, entity-encoded text), so write∘tokenize∘write is a
//! fixpoint.

use crate::token::Token;

/// Render a token stream as HTML text.
///
/// Text inside raw-text elements (`script`, `style`, `textarea`) is
/// emitted verbatim, matching how the tokenizer consumed it; text
/// elsewhere is entity-encoded. (Hand-built streams that place a literal
/// `</script…` inside a script body will not round-trip — the tokenizer
/// never produces such streams.)
pub fn write(tokens: &[Token]) -> String {
    let mut out = String::new();
    let mut raw_ctx: Option<String> = None;
    for t in tokens {
        match t {
            Token::StartTag {
                name, self_closing, ..
            } if raw_ctx.is_none()
                && !self_closing
                && matches!(name.as_str(), "SCRIPT" | "STYLE" | "TEXTAREA") =>
            {
                raw_ctx = Some(name.clone());
                write_token(t, &mut out);
            }
            Token::EndTag { name } if raw_ctx.as_deref() == Some(name) => {
                raw_ctx = None;
                write_token(t, &mut out);
            }
            Token::Text(text) if raw_ctx.is_some() => out.push_str(text),
            other => write_token(other, &mut out),
        }
    }
    out
}

fn write_token(t: &Token, out: &mut String) {
    match t {
        Token::StartTag {
            name,
            attrs,
            self_closing,
        } => {
            out.push('<');
            out.push_str(&name.to_ascii_lowercase());
            for a in attrs {
                out.push(' ');
                out.push_str(&a.name);
                if !a.value.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&encode_attr(&a.value));
                    out.push('"');
                }
            }
            if *self_closing {
                out.push_str(" /");
            }
            out.push('>');
        }
        Token::EndTag { name } => {
            out.push_str("</");
            out.push_str(&name.to_ascii_lowercase());
            out.push('>');
        }
        Token::Text(t) => out.push_str(&encode_text(t)),
        Token::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        Token::Doctype(d) => {
            out.push_str("<!");
            out.push_str(d);
            out.push('>');
        }
    }
}

fn encode_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn encode_attr(s: &str) -> String {
    encode_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Attribute;
    use crate::tokenizer::tokenize;

    #[test]
    fn renders_basic_structure() {
        let toks = vec![
            Token::start("p"),
            Token::Text("a & b".into()),
            Token::end("p"),
        ];
        assert_eq!(write(&toks), "<p>a &amp; b</p>");
    }

    #[test]
    fn renders_attributes() {
        let toks = vec![Token::StartTag {
            name: "INPUT".into(),
            attrs: vec![
                Attribute::new("type", "text"),
                Attribute::new("checked", ""),
                Attribute::new("title", "say \"hi\""),
            ],
            self_closing: true,
        }];
        assert_eq!(
            write(&toks),
            "<input type=\"text\" checked title=\"say &quot;hi&quot;\" />"
        );
    }

    #[test]
    fn write_tokenize_write_is_fixpoint() {
        let sources = [
            "<p><h1>Virtual Supplier, Inc.</h1></p>",
            r#"<form method="post" action="search.cgi"><input type="text" size="15" name="value" /></form>"#,
            "<table><tr><td><a href=\"cust.html\">Customer Service</a></td></tr></table>",
            "<!-- note --><p>x &amp; y</p>",
        ];
        for src in sources {
            let once = write(&tokenize(src));
            let twice = write(&tokenize(&once));
            assert_eq!(once, twice, "not a fixpoint for {src}");
        }
    }

    #[test]
    fn round_trip_preserves_token_structure() {
        let src = r#"<table><tr><td><form method="post"><input type="radio" checked> K</form></td></tr></table>"#;
        let toks1 = tokenize(src);
        let toks2 = tokenize(&write(&toks1));
        assert_eq!(toks1, toks2);
    }
}
