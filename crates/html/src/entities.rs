//! Character-reference (entity) decoding.
//!
//! Supports the named entities that occur in real catalog pages plus
//! decimal (`&#64;`) and hexadecimal (`&#x40;`) numeric references.
//! Unknown or malformed references are passed through verbatim — the
//! permissive behaviour a wrapper needs on wild HTML.

/// Decode character references in `input`.
pub fn decode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find terminating ';' within a reasonable window.
        let end = input[i + 1..]
            .char_indices()
            .take(32)
            .find(|&(_, c)| c == ';')
            .map(|(off, _)| i + 1 + off);
        match end {
            Some(semi) => {
                let body = &input[i + 1..semi];
                match decode_one(body) {
                    Some(decoded) => {
                        out.push_str(&decoded);
                        i = semi + 1;
                    }
                    None => {
                        out.push('&');
                        i += 1;
                    }
                }
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn decode_one(body: &str) -> Option<String> {
    let named = match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        "nbsp" => Some('\u{a0}'),
        "copy" => Some('©'),
        "reg" => Some('®'),
        "trade" => Some('™'),
        "mdash" => Some('—'),
        "ndash" => Some('–'),
        "hellip" => Some('…'),
        _ => None,
    };
    if let Some(c) = named {
        return Some(c.to_string());
    }
    let stripped = body.strip_prefix('#')?;
    let code = if let Some(hex) = stripped.strip_prefix(['x', 'X']) {
        u32::from_str_radix(hex, 16).ok()?
    } else {
        stripped.parse::<u32>().ok()?
    };
    char::from_u32(code).map(|c| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode("a &amp; b"), "a & b");
        assert_eq!(decode("&lt;p&gt;"), "<p>");
        assert_eq!(decode("&quot;x&quot;"), "\"x\"");
        assert_eq!(decode("&copy; 2000"), "© 2000");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode("&#64;"), "@");
        assert_eq!(decode("&#x40;"), "@");
        assert_eq!(decode("&#X41;"), "A");
    }

    #[test]
    fn malformed_references_pass_through() {
        assert_eq!(decode("&zzz;"), "&zzz;");
        assert_eq!(decode("AT&T"), "AT&T");
        assert_eq!(decode("a & b"), "a & b");
        assert_eq!(decode("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode("&"), "&");
        assert_eq!(decode("&#1114112;"), "&#1114112;"); // out of range
    }

    #[test]
    fn multibyte_text_survives() {
        assert_eq!(decode("prix — 10€ &amp; plus"), "prix — 10€ & plus");
    }

    #[test]
    fn empty_and_plain_strings() {
        assert_eq!(decode(""), "");
        assert_eq!(decode("no entities here"), "no entities here");
    }
}
