//! A permissive streaming HTML tokenizer.
//!
//! Built for wrapper robustness, not spec conformance: real catalog pages
//! (the paper's domain) contain unquoted attributes, stray `<`, unclosed
//! comments and raw-text `<script>`/`<style>` bodies. The tokenizer never
//! fails — every input produces *some* token stream, and malformed
//! constructs degrade to text.

use crate::entities::decode;
use crate::token::{Attribute, Token};

/// A token's extent in the source document: byte offsets `[start, end)`.
///
/// Spans are measured on the **raw input** (before entity decoding), so
/// they always index into the original page — which is what provenance
/// records need. Consecutive spans tile the input exactly: trailing junk
/// that the permissive tokenizer swallows (unterminated attributes, the
/// `>` of an end tag, inter-construct whitespace consumed during attr
/// scanning) is attributed to the token that swallowed it.
pub type Span = (usize, usize);

/// Tokenize an HTML document into a token stream.
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer {
        input,
        pos: 0,
        out: Vec::new(),
        starts: Vec::new(),
    }
    .run()
}

/// Tokenize, additionally reporting each token's byte [`Span`].
///
/// The token stream is identical to [`tokenize`]'s; `spans[i]` is the
/// extent of `tokens[i]`. Spans are non-overlapping, sorted, and cover
/// `0..input.len()` exactly (the tokenizer never skips a byte without
/// charging it to some token).
pub fn tokenize_spanned(input: &str) -> (Vec<Token>, Vec<Span>) {
    let mut t = Tokenizer {
        input,
        pos: 0,
        out: Vec::new(),
        starts: Vec::new(),
    };
    while t.pos < t.input.len() {
        if t.rest().starts_with('<') {
            t.lex_angle();
        } else {
            t.lex_text();
        }
    }
    let spans = t
        .starts
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, t.starts.get(i + 1).copied().unwrap_or(input.len())))
        .collect();
    (t.out, spans)
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    out: Vec<Token>,
    /// Start offset of each token in `out`, recorded at every push site.
    /// A token's extent ends where the next token begins (or at EOF), so
    /// starts alone determine the full span vector.
    starts: Vec<usize>,
}

impl<'a> Tokenizer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.input.len() {
            if self.rest().starts_with('<') {
                self.lex_angle();
            } else {
                self.lex_text();
            }
        }
        self.out
    }

    fn emit(&mut self, start: usize, tok: Token) {
        self.starts.push(start);
        self.out.push(tok);
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn lex_text(&mut self) {
        let end = self
            .rest()
            .find('<')
            .map(|o| self.pos + o)
            .unwrap_or(self.input.len());
        let raw = &self.input[self.pos..end];
        if !raw.is_empty() {
            let start = self.pos;
            self.emit(start, Token::Text(decode(raw)));
        }
        self.pos = end;
    }

    fn lex_angle(&mut self) {
        let rest = self.rest();
        if rest.starts_with("<!--") {
            self.lex_comment();
        } else if rest.len() >= 2 && rest[1..].starts_with(['!', '?']) {
            self.lex_declaration();
        } else if rest[1..].starts_with('/') {
            self.lex_end_tag();
        } else if rest[1..].starts_with(|c: char| c.is_ascii_alphabetic()) {
            self.lex_start_tag();
        } else {
            // Stray '<': emit as text and move on.
            let start = self.pos;
            self.emit(start, Token::Text("<".to_string()));
            self.pos += 1;
        }
    }

    fn lex_comment(&mut self) {
        let start = self.pos;
        let body_start = self.pos + 4;
        match self.input[body_start..].find("-->") {
            Some(off) => {
                self.emit(
                    start,
                    Token::Comment(self.input[body_start..body_start + off].to_string()),
                );
                self.pos = body_start + off + 3;
            }
            None => {
                // Unclosed comment swallows the rest of the document.
                self.emit(start, Token::Comment(self.input[body_start..].to_string()));
                self.pos = self.input.len();
            }
        }
    }

    fn lex_declaration(&mut self) {
        let start = self.pos;
        // <!DOCTYPE …> or <?xml …?> — capture up to '>'.
        match self.rest().find('>') {
            Some(off) => {
                let body = &self.input[self.pos + 2..self.pos + off];
                self.emit(start, Token::Doctype(body.trim().to_string()));
                self.pos += off + 1;
            }
            None => {
                self.emit(start, Token::Text(self.rest().to_string()));
                self.pos = self.input.len();
            }
        }
    }

    fn lex_end_tag(&mut self) {
        let start = self.pos;
        let name_start = self.pos + 2;
        let name_end = self.input[name_start..]
            .find(|c: char| !is_tag_name_char(c))
            .map(|o| name_start + o)
            .unwrap_or(self.input.len());
        let name = &self.input[name_start..name_end];
        if name.is_empty() {
            self.emit(start, Token::Text("</".to_string()));
            self.pos += 2;
            return;
        }
        // Skip to '>' (ignoring junk in between, e.g. attributes on an
        // end tag).
        let close = self.input[name_end..].find('>').map(|o| name_end + o);
        self.emit(start, Token::end(name));
        self.pos = close.map(|c| c + 1).unwrap_or(self.input.len());
    }

    fn lex_start_tag(&mut self) {
        let start = self.pos;
        let name_start = self.pos + 1;
        let name_end = self.input[name_start..]
            .find(|c: char| !is_tag_name_char(c))
            .map(|o| name_start + o)
            .unwrap_or(self.input.len());
        let name = self.input[name_start..name_end].to_string();
        self.pos = name_end;
        let (attrs, self_closing) = self.lex_attrs();
        let name_upper = name.to_ascii_uppercase();
        self.emit(
            start,
            Token::StartTag {
                name: name_upper.clone(),
                attrs,
                self_closing,
            },
        );
        // Raw-text elements: consume body verbatim until the matching
        // close tag.
        if !self_closing && matches!(name_upper.as_str(), "SCRIPT" | "STYLE" | "TEXTAREA") {
            self.lex_raw_text(&name_upper);
        }
    }

    fn lex_raw_text(&mut self, name: &str) {
        let lower = format!("</{}", name.to_ascii_lowercase());
        let upper = format!("</{}", name);
        let hay = self.rest();
        let end = hay
            .match_indices("</")
            .find(|&(i, _)| {
                hay[i..].len() >= lower.len()
                    && (hay.as_bytes()[i..][2..lower.len()]
                        .eq_ignore_ascii_case(&lower.as_bytes()[2..]))
            })
            .map(|(i, _)| self.pos + i);
        let _ = upper;
        match end {
            Some(e) => {
                if e > self.pos {
                    let start = self.pos;
                    self.emit(start, Token::Text(self.input[self.pos..e].to_string()));
                }
                self.pos = e;
                self.lex_end_tag();
            }
            None => {
                if !self.rest().is_empty() {
                    let start = self.pos;
                    self.emit(start, Token::Text(self.rest().to_string()));
                }
                self.pos = self.input.len();
            }
        }
    }

    /// Lex attributes up to and including the closing `>`. Returns the
    /// attribute list and whether the tag was self-closing.
    fn lex_attrs(&mut self) -> (Vec<Attribute>, bool) {
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.is_empty() {
                break;
            }
            if let Some(r) = rest.strip_prefix("/>") {
                let _ = r;
                self_closing = true;
                self.pos += 2;
                break;
            }
            if rest.starts_with('>') {
                self.pos += 1;
                break;
            }
            if rest.starts_with('/') {
                // lone '/', not '/>': skip it.
                self.pos += 1;
                continue;
            }
            // Attribute name.
            let name_end = rest
                .find(|c: char| c.is_whitespace() || matches!(c, '=' | '>' | '/'))
                .unwrap_or(rest.len());
            if name_end == 0 {
                self.pos += 1; // junk byte
                continue;
            }
            let name = &rest[..name_end];
            self.pos += name_end;
            self.skip_ws();
            if self.rest().starts_with('=') {
                self.pos += 1;
                self.skip_ws();
                let value = self.lex_attr_value();
                attrs.push(Attribute::new(name, decode(&value)));
            } else {
                attrs.push(Attribute::new(name, ""));
            }
        }
        (attrs, self_closing)
    }

    fn lex_attr_value(&mut self) -> String {
        let rest = self.rest();
        if let Some(q) = rest.chars().next().filter(|&c| c == '"' || c == '\'') {
            let body_start = self.pos + 1;
            match self.input[body_start..].find(q) {
                Some(off) => {
                    let v = self.input[body_start..body_start + off].to_string();
                    self.pos = body_start + off + 1;
                    v
                }
                None => {
                    let v = self.input[body_start..].to_string();
                    self.pos = self.input.len();
                    v
                }
            }
        } else {
            let end = rest
                .find(|c: char| c.is_whitespace() || c == '>')
                .unwrap_or(rest.len());
            let v = rest[..end].to_string();
            self.pos += end;
            v
        }
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }
}

fn is_tag_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == ':'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(input: &str) -> Vec<String> {
        tokenize(input)
            .iter()
            .map(|t| match t {
                Token::StartTag { name, .. } => name.clone(),
                Token::EndTag { name } => format!("/{name}"),
                Token::Text(t) => format!("'{t}'"),
                Token::Comment(_) => "<!---->".to_string(),
                Token::Doctype(_) => "<!DOCTYPE>".to_string(),
            })
            .collect()
    }

    #[test]
    fn basic_structure() {
        assert_eq!(
            names("<p><h1>Shop</h1></p>"),
            ["P", "H1", "'Shop'", "/H1", "/P"]
        );
    }

    #[test]
    fn figure_1_form_fragment() {
        let html = r#"<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" />
</form>"#;
        let toks: Vec<Token> = tokenize(html)
            .into_iter()
            .filter(|t| !t.is_blank_text())
            .collect();
        let tags: Vec<&str> = toks.iter().filter_map(|t| t.tag_name()).collect();
        assert_eq!(tags, ["FORM", "INPUT", "INPUT", "FORM"]);
        assert_eq!(toks[0].attr("action"), Some("search.cgi"));
        assert_eq!(toks[1].attr("type"), Some("image"));
        match &toks[1] {
            Token::StartTag { self_closing, .. } => assert!(self_closing),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn unquoted_and_boolean_attributes() {
        let toks = tokenize("<input type=radio name=attr value=1 checked>");
        assert_eq!(toks[0].attr("type"), Some("radio"));
        assert_eq!(toks[0].attr("value"), Some("1"));
        assert_eq!(toks[0].attr("checked"), Some(""));
    }

    #[test]
    fn single_quoted_attributes_and_entities() {
        let toks = tokenize("<a href='x.html' title=\"a &amp; b\">link</a>");
        assert_eq!(toks[0].attr("href"), Some("x.html"));
        assert_eq!(toks[0].attr("title"), Some("a & b"));
    }

    #[test]
    fn comments_and_doctype() {
        assert_eq!(
            names("<!DOCTYPE html><!-- hi --><p>"),
            ["<!DOCTYPE>", "<!---->", "P"]
        );
        // unclosed comment swallows the rest
        assert_eq!(names("<!-- oops <p>"), ["<!---->"]);
    }

    #[test]
    fn script_body_is_raw_text() {
        let toks = tokenize("<script>if (a<b) { x('</div>'.length) }</script><p>");
        // body preserved as one text token; the inner </div>-in-string is
        // unfortunately a real close candidate per HTML rules — our
        // permissive scanner stops at the first `</`, which is the
        // documented degradation.
        let tags: Vec<&str> = toks.iter().filter_map(|t| t.tag_name()).collect();
        assert!(tags.contains(&"SCRIPT"));
        assert!(tags.contains(&"P"));
    }

    #[test]
    fn script_without_close_tag() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Text("var x = 1;".to_string()));
    }

    #[test]
    fn stray_angle_brackets_degrade_to_text() {
        assert_eq!(names("a < b"), ["'a '", "'<'", "' b'"]);
        assert_eq!(names("</>"), ["'</'", "'>'"]);
    }

    #[test]
    fn end_tag_with_junk_attributes() {
        assert_eq!(names("</td align=left>"), ["/TD"]);
    }

    #[test]
    fn case_normalization() {
        assert_eq!(names("<TaBlE></tAbLe>"), ["TABLE", "/TABLE"]);
    }

    #[test]
    fn text_entities_are_decoded() {
        let toks = tokenize("<td>Black &amp; Decker</td>");
        assert_eq!(toks[1], Token::Text("Black & Decker".to_string()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn truncated_tag_at_eof() {
        // must not panic or loop
        let toks = tokenize("<input type=");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].tag_name(), Some("INPUT"));
    }

    #[test]
    fn spanned_matches_tokenize_and_tiles_input() {
        let docs = [
            "<p><h1>Shop &amp; Save</h1></p>",
            "<table><tr><td>Widget</td><td>$9.99</td></tr></table>",
            "<script>if (a<b) {}</script><p>done",
            "a < b </> <!-- c --> <!DOCTYPE html><input type= ",
            "",
        ];
        for doc in docs {
            let (toks, spans) = tokenize_spanned(doc);
            assert_eq!(toks, tokenize(doc), "token stream diverged on {doc:?}");
            assert_eq!(toks.len(), spans.len());
            let mut cursor = 0;
            for &(s, e) in &spans {
                assert_eq!(s, cursor, "gap/overlap at byte {cursor} in {doc:?}");
                assert!(e > s, "empty span in {doc:?}");
                cursor = e;
            }
            if !spans.is_empty() {
                assert_eq!(cursor, doc.len(), "spans do not cover {doc:?}");
            }
        }
    }

    #[test]
    fn spans_slice_back_to_source_tags() {
        let doc = "<td>Black &amp; Decker</td>";
        let (toks, spans) = tokenize_spanned(doc);
        assert_eq!(&doc[spans[0].0..spans[0].1], "<td>");
        // The text token's span covers the *raw* (undecoded) source bytes.
        assert_eq!(&doc[spans[1].0..spans[1].1], "Black &amp; Decker");
        assert_eq!(toks[1], Token::Text("Black & Decker".to_string()));
        assert_eq!(&doc[spans[2].0..spans[2].1], "</td>");
    }
}
