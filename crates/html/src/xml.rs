//! XML mode — Section 8's closing direction ("Another interesting issue
//! is to explore data extraction from XML").
//!
//! XML differs from our HTML handling in the ways that matter to the
//! tag-sequence abstraction:
//!
//! * element names are **case-sensitive** (`<Item>` ≠ `<item>`), so no
//!   uppercase normalization;
//! * there are no void elements or raw-text elements — every element
//!   closes explicitly or is self-closing;
//! * processing instructions (`<?…?>`) and CDATA sections appear.
//!
//! [`tokenize_xml`] reuses the HTML scanner machinery with those rules.
//! The companion [`crate::token::Token`] model is shared, so everything
//! downstream (abstraction, learning, wrappers) works on XML unchanged.

use crate::entities::decode;
use crate::token::{Attribute, Token};

/// Tokenize an XML document. Permissive like the HTML tokenizer: bad
/// input degrades to text rather than erroring.
pub fn tokenize_xml(input: &str) -> Vec<Token> {
    XmlTokenizer {
        input,
        pos: 0,
        out: Vec::new(),
    }
    .run()
}

struct XmlTokenizer<'a> {
    input: &'a str,
    pos: usize,
    out: Vec<Token>,
}

impl<'a> XmlTokenizer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.input.len() {
            if self.rest().starts_with('<') {
                self.lex_angle();
            } else {
                let end = self
                    .rest()
                    .find('<')
                    .map(|o| self.pos + o)
                    .unwrap_or(self.input.len());
                let raw = &self.input[self.pos..end];
                if !raw.is_empty() {
                    self.out.push(Token::Text(decode(raw)));
                }
                self.pos = end;
            }
        }
        self.out
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn lex_angle(&mut self) {
        let rest = self.rest();
        if rest.starts_with("<![CDATA[") {
            let body_start = self.pos + 9;
            match self.input[body_start..].find("]]>") {
                Some(off) => {
                    self.out
                        .push(Token::Text(self.input[body_start..body_start + off].into()));
                    self.pos = body_start + off + 3;
                }
                None => {
                    self.out.push(Token::Text(self.input[body_start..].into()));
                    self.pos = self.input.len();
                }
            }
        } else if rest.starts_with("<!--") {
            let body_start = self.pos + 4;
            match self.input[body_start..].find("-->") {
                Some(off) => {
                    self.out.push(Token::Comment(
                        self.input[body_start..body_start + off].into(),
                    ));
                    self.pos = body_start + off + 3;
                }
                None => {
                    self.out
                        .push(Token::Comment(self.input[body_start..].into()));
                    self.pos = self.input.len();
                }
            }
        } else if rest.starts_with("<?") || rest.starts_with("<!") {
            // Processing instruction / declaration: capture to '>'.
            match rest.find('>') {
                Some(off) => {
                    self.out
                        .push(Token::Doctype(rest[2..off].trim().to_string()));
                    self.pos += off + 1;
                }
                None => {
                    self.out.push(Token::Text(rest.to_string()));
                    self.pos = self.input.len();
                }
            }
        } else if rest[1..].starts_with('/') {
            self.lex_end_tag();
        } else if rest[1..].starts_with(is_name_start) {
            self.lex_start_tag();
        } else {
            self.out.push(Token::Text("<".into()));
            self.pos += 1;
        }
    }

    fn lex_end_tag(&mut self) {
        let name_start = self.pos + 2;
        let name_end = self.input[name_start..]
            .find(|c: char| !is_name_char(c))
            .map(|o| name_start + o)
            .unwrap_or(self.input.len());
        let name = self.input[name_start..name_end].to_string();
        let close = self.input[name_end..].find('>').map(|o| name_end + o);
        self.out.push(Token::EndTag { name });
        self.pos = close.map(|c| c + 1).unwrap_or(self.input.len());
    }

    fn lex_start_tag(&mut self) {
        let name_start = self.pos + 1;
        let name_end = self.input[name_start..]
            .find(|c: char| !is_name_char(c))
            .map(|o| name_start + o)
            .unwrap_or(self.input.len());
        let name = self.input[name_start..name_end].to_string();
        self.pos = name_end;
        let (attrs, self_closing) = self.lex_attrs();
        self.out.push(Token::StartTag {
            name,
            attrs,
            self_closing,
        });
    }

    fn lex_attrs(&mut self) -> (Vec<Attribute>, bool) {
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_ws();
            let rest = self.rest();
            if rest.is_empty() {
                break;
            }
            if rest.starts_with("/>") || rest.starts_with("?>") {
                self_closing = true;
                self.pos += 2;
                break;
            }
            if rest.starts_with('>') {
                self.pos += 1;
                break;
            }
            let name_end = rest
                .find(|c: char| c.is_whitespace() || matches!(c, '=' | '>' | '/' | '?'))
                .unwrap_or(rest.len());
            if name_end == 0 {
                self.pos += 1;
                continue;
            }
            let name = rest[..name_end].to_string();
            self.pos += name_end;
            self.skip_ws();
            if self.rest().starts_with('=') {
                self.pos += 1;
                self.skip_ws();
                let value = self.lex_value();
                // XML attribute names are case-sensitive too: build the
                // attribute directly rather than via the lowercasing
                // constructor.
                attrs.push(Attribute {
                    name,
                    value: decode(&value),
                });
            } else {
                attrs.push(Attribute {
                    name,
                    value: String::new(),
                });
            }
        }
        (attrs, self_closing)
    }

    fn lex_value(&mut self) -> String {
        let rest = self.rest();
        if let Some(q) = rest.chars().next().filter(|&c| c == '"' || c == '\'') {
            let body_start = self.pos + 1;
            match self.input[body_start..].find(q) {
                Some(off) => {
                    let v = self.input[body_start..body_start + off].to_string();
                    self.pos = body_start + off + 1;
                    v
                }
                None => {
                    let v = self.input[body_start..].to_string();
                    self.pos = self.input.len();
                    v
                }
            }
        } else {
            let end = rest
                .find(|c: char| c.is_whitespace() || c == '>')
                .unwrap_or(rest.len());
            let v = rest[..end].to_string();
            self.pos += end;
            v
        }
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_is_preserved() {
        let toks = tokenize_xml("<Item><price>9.99</price></Item>");
        let names: Vec<&str> = toks.iter().filter_map(|t| t.tag_name()).collect();
        assert_eq!(names, ["Item", "price", "price", "Item"]);
    }

    #[test]
    fn self_closing_and_attributes() {
        let toks = tokenize_xml(r#"<product sku="A-1" inStock="true"/>"#);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].attr("sku"), Some("A-1"));
        // Case-sensitive attribute names.
        match &toks[0] {
            Token::StartTag {
                attrs,
                self_closing,
                ..
            } => {
                assert!(self_closing);
                assert_eq!(attrs[1].name, "inStock");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cdata_and_pi() {
        let toks = tokenize_xml("<?xml version=\"1.0\"?><d><![CDATA[a<b&c]]></d>");
        assert!(matches!(&toks[0], Token::Doctype(d) if d.contains("xml")));
        assert_eq!(toks[2], Token::Text("a<b&c".into()));
    }

    #[test]
    fn entities_decode_in_text_not_cdata() {
        let toks = tokenize_xml("<d>a&amp;b</d><e><![CDATA[a&amp;b]]></e>");
        assert_eq!(toks[1], Token::Text("a&b".into()));
        assert_eq!(toks[4], Token::Text("a&amp;b".into()));
    }

    #[test]
    fn namespaced_names() {
        let toks = tokenize_xml("<cat:item xmlns:cat=\"urn:x\"/>");
        assert_eq!(toks[0].tag_name(), Some("cat:item"));
    }

    #[test]
    fn permissive_on_garbage() {
        for s in ["< ", "</", "<![CDATA[ unclosed", "<!-- unclosed", "<a b="] {
            let _ = tokenize_xml(s); // must not panic
        }
    }

    #[test]
    fn works_with_the_seq_abstraction() {
        use crate::seq::{to_names, SeqConfig};
        let toks = tokenize_xml("<catalog><Item><price>9</price></Item></catalog>");
        let entries = to_names(&toks, &SeqConfig::tags_only());
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            ["catalog", "Item", "price", "/price", "/Item", "/catalog"]
        );
    }
}
