//! Robustness: the tokenizer must accept *anything* without panicking
//! (wrappers meet wild HTML), and canonical rendering must be a fixpoint.

use proptest::prelude::*;
use rextract_html::seq::{to_names, SeqConfig};
use rextract_html::tokenizer::tokenize;
use rextract_html::writer::write;

/// Strings biased towards HTML-ish content.
fn arb_htmlish() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        3 => "[a-z<>/&;=\"' !#-]{0,12}",
        2 => Just("<input type=\"text\">".to_string()),
        2 => Just("</td>".to_string()),
        1 => Just("<!-- c ".to_string()),
        1 => Just("&amp;&#64;&bogus;".to_string()),
        1 => Just("<script>a<b</script>".to_string()),
        1 => "\\PC{0,8}".prop_map(|s| s),
    ];
    proptest::collection::vec(piece, 0..8).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Never panics, on anything.
    #[test]
    fn tokenize_total(input in arb_htmlish()) {
        let toks = tokenize(&input);
        // And abstraction + rendering are total too.
        let _ = to_names(&toks, &SeqConfig::with_text());
        let _ = write(&toks);
    }

    /// Canonical rendering is a fixpoint: write∘tokenize is idempotent
    /// past the first application.
    #[test]
    fn canonical_render_fixpoint(input in arb_htmlish()) {
        let once = write(&tokenize(&input));
        let twice = write(&tokenize(&once));
        prop_assert_eq!(&once, &twice, "render not canonical for {:?}", input);
    }

    /// Tag tokens survive the round trip exactly (text may re-chunk, tags
    /// must not change).
    #[test]
    fn tags_survive_round_trip(input in arb_htmlish()) {
        let toks1 = tokenize(&input);
        let toks2 = tokenize(&write(&toks1));
        let tags = |toks: &[rextract_html::token::Token]| {
            toks.iter()
                .filter_map(|t| t.tag_name().map(String::from))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(tags(&toks1), tags(&toks2));
    }

    /// Completely arbitrary unicode never panics either.
    #[test]
    fn tokenize_arbitrary_unicode(input in "\\PC{0,64}") {
        let _ = tokenize(&input);
    }
}
