//! Tests for the interned language store: the memoized operation cache
//! must be semantically invisible (cached and uncached paths agree on
//! every operation), hash-consing must identify equal languages, and the
//! statistics counters must behave sanely under real workloads.

use proptest::prelude::*;
use rextract::automata::{Alphabet, Lang, Regex, Store};
use rextract::extraction::left_filter::left_filter_maximize;
use rextract::extraction::ExtractionExpr;

/// An alphabet of `n` symbols `t0..t(n-1)`.
fn alphabet_of(n: usize) -> Alphabet {
    Alphabet::new((0..n).map(|i| format!("t{i}")))
}

/// Random regex AST over an `n`-symbol alphabet (mirrors the generator in
/// `properties.rs`, parameterized by alphabet size).
fn arb_regex(n: usize) -> impl Strategy<Value = Regex> {
    let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
    let leaf = prop_oneof![
        1 => Just(Regex::Epsilon),
        6 => proptest::sample::subsequence(names, 1..=2).prop_map(move |picked| {
            let a = alphabet_of(n);
            let mut set = a.empty_set();
            for name in picked {
                set.insert(a.sym(&name));
            }
            Regex::class(set)
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Regex::concat([x, y])),
            3 => (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt([x, y])),
            2 => inner.clone().prop_map(Regex::star),
            1 => (inner.clone(), inner.clone()).prop_map(|(x, y)| x.diff(y)),
        ]
    })
}

/// Cross-check every store operation: the memoized path (`Store::global`)
/// and the cache-bypassing path (`Store::uncached`) must produce the same
/// interned language — equality here is an O(1) id compare, so agreement
/// means both paths landed on the *same* canonical DFA.
fn check_ops_agree(a: &Alphabet, x: &Regex, y: &Regex) {
    let cached = Store::global();
    let uncached = Store::uncached();
    let lx = Lang::from_regex(a, x);
    let ly = Lang::from_regex(a, y);

    assert_eq!(cached.union(&lx, &ly), uncached.union(&lx, &ly));
    assert_eq!(cached.intersect(&lx, &ly), uncached.intersect(&lx, &ly));
    assert_eq!(cached.difference(&lx, &ly), uncached.difference(&lx, &ly));
    assert_eq!(cached.concat(&lx, &ly), uncached.concat(&lx, &ly));
    assert_eq!(cached.complement(&lx), uncached.complement(&lx));
    assert_eq!(cached.star(&lx), uncached.star(&lx));
    assert_eq!(cached.reversed(&lx), uncached.reversed(&lx));
    assert_eq!(
        cached.right_quotient(&lx, &ly),
        uncached.right_quotient(&lx, &ly)
    );
    assert_eq!(
        cached.left_quotient(&lx, &ly),
        uncached.left_quotient(&lx, &ly)
    );
    assert_eq!(cached.is_empty(&lx), uncached.is_empty(&lx));
    assert_eq!(cached.is_universal(&lx), uncached.is_universal(&lx));
    assert_eq!(cached.is_subset(&lx, &ly), uncached.is_subset(&lx, &ly));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached vs uncached agreement over a 2-symbol alphabet.
    #[test]
    fn cached_agrees_with_uncached_sigma2(x in arb_regex(2), y in arb_regex(2)) {
        check_ops_agree(&alphabet_of(2), &x, &y);
    }

    /// Cached vs uncached agreement over an 8-symbol alphabet.
    #[test]
    fn cached_agrees_with_uncached_sigma8(x in arb_regex(8), y in arb_regex(8)) {
        check_ops_agree(&alphabet_of(8), &x, &y);
    }
}

/// Hash-consing: syntactically different regexes denoting the same
/// language intern to the same id (and thus the same `Arc`'d DFA).
#[test]
fn equal_languages_intern_to_the_same_id() {
    let a = alphabet_of(2);
    let pairs = [
        ("(t0 | t1)*", ".*"),
        ("t0 t0*", "t0+"),
        ("(t0* t1*)*", ".*"),
        ("t0 | t1 t0", "(~ | t1) t0"),
    ];
    for (s1, s2) in pairs {
        let l1 = Lang::parse(&a, s1).unwrap();
        let l2 = Lang::parse(&a, s2).unwrap();
        assert_eq!(
            l1.id(),
            l2.id(),
            "{s1} and {s2} denote the same language but got distinct ids"
        );
    }
}

/// Serializes the tests that are sensitive to op-cache capacity: the
/// concurrency hammer below flips the global bound mid-flight, which
/// would evict the entries whose cache hits the stats test asserts on.
static CACHE_CAPACITY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// StoreStats across a left-filter maximization: counters are monotone,
/// the first run does real work (misses), and an identical second run is
/// answered from the cache (fresh hits).
#[test]
fn stats_are_monotone_and_plausible_across_a_left_filter_run() {
    let _serial = CACHE_CAPACITY_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let a = Alphabet::new(["p", "q", "r"]);
    let expr = ExtractionExpr::parse(&a, "q* p r <p> .*").unwrap();

    let s0 = Store::stats();
    let out1 = left_filter_maximize(&expr).unwrap();
    let s1 = Store::stats();

    // Monotone totals (other tests may run concurrently, so only ≥).
    assert!(s1.hits() >= s0.hits());
    assert!(s1.misses() >= s0.misses());
    assert!(s1.interned >= s0.interned);

    let first = s1.since(&s0);
    assert!(
        first.hits() + first.misses() > 0,
        "maximization must go through the op cache: {}",
        first.summary()
    );

    // The identical run again: every memoized operation now hits.
    let out2 = left_filter_maximize(&expr).unwrap();
    let second = Store::stats().since(&s1);
    assert_eq!(
        out1.left(),
        out2.left(),
        "maximization must be deterministic"
    );
    assert!(
        second.hits() > 0,
        "second identical run produced no cache hits: {}",
        second.summary()
    );
    // Per-op breakdown stays internally consistent.
    for op in &second.per_op {
        assert!(
            op.hits + op.misses >= op.hits,
            "counter overflow for {}",
            op.name
        );
    }
}

/// All twelve memoized ops on one pair, as `(lang results, bool results)`
/// — the unit of cross-checking for the concurrency hammer below.
fn op_results(store: Store, lx: &Lang, ly: &Lang) -> (Vec<Lang>, Vec<bool>) {
    (
        vec![
            store.union(lx, ly),
            store.intersect(lx, ly),
            store.difference(lx, ly),
            store.concat(lx, ly),
            store.complement(lx),
            store.star(lx),
            store.reversed(lx),
            store.right_quotient(lx, ly),
            store.left_quotient(lx, ly),
        ],
        vec![
            store.is_empty(lx),
            store.is_universal(lx),
            store.is_subset(lx, ly),
        ],
    )
}

/// A pair of operands plus the ground-truth results for every op on them.
type WorkItem = (Lang, Lang, (Vec<Lang>, Vec<bool>));

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The sharded store under real contention: 8 worker threads — half
    /// replaying one shared op sequence (maximal shard sharing), half on
    /// disjoint per-thread sequences (concurrent interner growth) — while
    /// a control thread hammers the lock-free `Store::stats()` and flips
    /// `set_op_cache_capacity` between a tiny bound, a moderate one, and
    /// unbounded. Eviction racing the workers may cost recomputation,
    /// never a wrong `Lang`: every result is checked against uncached
    /// ground truth computed up front.
    #[test]
    fn concurrent_hammer_under_capacity_flips_agrees_with_uncached(
        shared in proptest::collection::vec(arb_regex(3), 2),
        disjoint in proptest::collection::vec(arb_regex(3), 4),
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let _serial = CACHE_CAPACITY_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let a = alphabet_of(3);
        let truth = Store::uncached();

        // Pair i with i+1 (wrapping) so every thread exercises binary ops.
        let pairs = |regexes: &[Regex]| -> Vec<WorkItem> {
            (0..regexes.len())
                .map(|i| {
                    let lx = Lang::from_regex(&a, &regexes[i]);
                    let ly = Lang::from_regex(&a, &regexes[(i + 1) % regexes.len()]);
                    let want = op_results(truth, &lx, &ly);
                    (lx, ly, want)
                })
                .collect()
        };
        let shared_work = Arc::new(pairs(&shared));
        // Each disjoint worker gets its own pair, unshared with the rest.
        let disjoint_work: Vec<_> = disjoint
            .iter()
            .map(|r| {
                let lx = Lang::from_regex(&a, r);
                let ly = Lang::from_regex(&a, &Regex::star(r.clone()));
                let want = op_results(truth, &lx, &ly);
                Arc::new(vec![(lx, ly, want)])
            })
            .collect();

        let done = Arc::new(AtomicBool::new(false));
        let control = {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut last = Store::stats();
                let caps = [Some(8), Some(64), None];
                for i in 0.. {
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                    Store::set_op_cache_capacity(caps[i % caps.len()]);
                    let now = Store::stats();
                    // Lock-free snapshot invariants: totals only grow, and
                    // the shard vector keeps its shape mid-flight.
                    assert!(now.hits() >= last.hits(), "hits went backwards");
                    assert!(now.misses() >= last.misses(), "misses went backwards");
                    assert!(now.interned >= last.interned, "interner shrank");
                    assert_eq!(
                        now.shards.len(),
                        rextract::automata::store::SHARD_COUNT,
                        "stats must report every shard"
                    );
                    last = now;
                }
            })
        };

        let workers: Vec<_> = (0..8)
            .map(|t| {
                let work = if t < 4 {
                    Arc::clone(&shared_work)
                } else {
                    Arc::clone(&disjoint_work[t - 4])
                };
                std::thread::spawn(move || {
                    for _ in 0..12 {
                        for (lx, ly, want) in work.iter() {
                            assert_eq!(
                                &op_results(Store::global(), lx, ly),
                                want,
                                "concurrent result diverged from uncached ground truth"
                            );
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("hammer worker panicked");
        }
        done.store(true, Ordering::Relaxed);
        control.join().expect("control thread panicked");

        // Leave the store unbounded for the rest of the suite.
        Store::set_op_cache_capacity(None);
        prop_assert_eq!(
            op_results(Store::global(), &shared_work[0].0, &shared_work[0].1),
            truth_results_clone(&shared_work[0].2)
        );
    }
}

/// Clone helper: `(Vec<Lang>, Vec<bool>)` is not `Copy`.
fn truth_results_clone(r: &(Vec<Lang>, Vec<bool>)) -> (Vec<Lang>, Vec<bool>) {
    (r.0.clone(), r.1.clone())
}

/// A panicking worker thread must not wedge the global store: the daemon
/// keeps serving after any request thread dies mid-extraction. (The store
/// mutex recovers from poisoning — its state is a pure cache with no
/// invariants spanning a panic.)
#[test]
fn store_survives_panicking_worker_threads() {
    let a = alphabet_of(2);
    // Several workers hammer the store; half of them panic mid-flight.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let a = a.clone();
            std::thread::spawn(move || {
                let x = Lang::parse(&a, "t0* t1").unwrap();
                let y = Lang::parse(&a, "(t1 t0)*").unwrap();
                let s = Store::global();
                let _ = s.union(&x, &y);
                let _ = s.is_subset(&x, &y);
                if i % 2 == 0 {
                    panic!("simulated request-handler crash");
                }
            })
        })
        .collect();
    let mut panics = 0;
    for h in handles {
        if h.join().is_err() {
            panics += 1;
        }
    }
    assert_eq!(panics, 4);
    // The store still answers — both cached and uncached paths.
    let x = Lang::parse(&a, "t0* t1").unwrap();
    let y = Lang::parse(&a, "(t1 t0)*").unwrap();
    assert_eq!(
        Store::global().union(&x, &y),
        Store::uncached().union(&x, &y)
    );
    assert!(Store::stats().hits() + Store::stats().misses() > 0);
}

/// The uncached store handle is observable as such and still interns.
#[test]
fn uncached_store_bypasses_cache_but_still_interns() {
    assert!(Store::global().is_cached());
    assert!(!Store::uncached().is_cached());
    let a = alphabet_of(2);
    let x = Lang::parse(&a, "t0*").unwrap();
    let u1 = Store::uncached().star(&x);
    let u2 = Store::uncached().star(&x);
    // Same canonical language → same interned id, even without the cache.
    assert_eq!(u1.id(), u2.id());
}
