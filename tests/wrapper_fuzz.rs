//! Randomized end-to-end hardening: train/extract across many site and
//! perturbation seeds, asserting the wrapper's safety contract everywhere
//! — a wrapper may *refuse* but must never silently mislocate on an
//! unedited page, and export/import must never change behaviour.

use rextract::wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract::wrapper::wrapper::{TrainPage, Wrapper, WrapperConfig};

fn train_on(seed: u64) -> Option<Wrapper> {
    let mut g = SiteGenerator::new(SiteConfig {
        seed,
        ..SiteConfig::default()
    });
    let pages = vec![
        TrainPage::from(&g.page_with_style(PageStyle::Plain)),
        TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        TrainPage::from(&g.page_with_style(PageStyle::Busy)),
    ];
    Wrapper::train(&pages, WrapperConfig::default()).ok()
}

#[test]
fn many_seeds_train_and_never_mislocate_clean_pages() {
    let mut trained = 0;
    let mut clean_hits = 0;
    let mut clean_total = 0;
    for seed in 1..25u64 {
        let Some(w) = train_on(seed) else { continue };
        trained += 1;
        assert!(w.expr().is_unambiguous(), "seed {seed}");
        let mut g = SiteGenerator::new(SiteConfig {
            seed: seed * 1000 + 7,
            ..SiteConfig::default()
        });
        for _ in 0..10 {
            let p = g.page();
            clean_total += 1;
            // Refusal is acceptable, mislocation is not.
            if let Ok(idx) = w.extract_target(&p.tokens) {
                assert_eq!(idx, p.target, "seed {seed}: silent mislocation");
                clean_hits += 1;
            }
        }
    }
    assert!(trained >= 20, "training failed too often: {trained}/24");
    assert!(
        clean_hits * 10 >= clean_total * 9,
        "too many refusals on clean pages: {clean_hits}/{clean_total}"
    );
}

#[test]
fn export_import_is_behaviour_preserving_across_seeds() {
    for seed in 1..12u64 {
        let Some(w) = train_on(seed) else { continue };
        let w2 = Wrapper::import(&w.export()).expect("import");
        let mut g = SiteGenerator::new(SiteConfig {
            seed: seed + 500,
            ..SiteConfig::default()
        });
        for _ in 0..5 {
            let p = g.page();
            assert_eq!(
                w.extract_target(&p.tokens).ok(),
                w2.extract_target(&p.tokens).ok(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn listing_scenario_trains_across_seeds() {
    for seed in 1..15u64 {
        let mut g = SiteGenerator::new(SiteConfig {
            seed,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.listing_page()),
            TrainPage::from(&g.listing_page()),
            TrainPage::from(&g.listing_page()),
        ];
        let Ok(w) = Wrapper::train(&pages, WrapperConfig::default()) else {
            continue;
        };
        // No silent mislocation on fresh listing pages.
        for _ in 0..8 {
            let p = g.listing_page();
            if let Ok(idx) = w.extract_target(&p.tokens) {
                assert_eq!(idx, p.target, "seed {seed}: price cell mislocated");
            }
        }
    }
}
