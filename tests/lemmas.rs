//! Integration test: the paper's algebraic lemmas, verified over random
//! regular languages.
//!
//! * Lemma 6.3 — distribution laws of factoring over union and
//!   concatenation, plus the two membership characterizations.
//! * Lemma 6.4 — the equivalences underpinning Algorithm 6.2's
//!   preconditions and the monotone structure of `E‖ⁿ_p`.
//!
//! These are exactly the facts the synthesis algorithms lean on; testing
//! them directly localizes any substrate regression.

use proptest::prelude::*;
use rextract::automata::{Alphabet, Lang, Regex};
use rextract::extraction::filtering::filter_exact;
use rextract::extraction::ExtractionExpr;

fn alphabet() -> Alphabet {
    Alphabet::new(["p", "q", "r"])
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        1 => Just(Regex::Epsilon),
        5 => proptest::sample::subsequence(vec!["p", "q", "r"], 1..=2).prop_map(|names| {
            let a = alphabet();
            let mut set = a.empty_set();
            for n in names {
                set.insert(a.sym(n));
            }
            Regex::class(set)
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::concat([x, y])),
            3 => (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt([x, y])),
            2 => inner.clone().prop_map(Regex::star),
        ]
    })
}

fn lang(r: &Regex) -> Lang {
    Lang::from_regex(&alphabet(), r)
}

fn p_sigma() -> Lang {
    Lang::parse(&alphabet(), "p .*").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 6.3(1): (E1 + E2)/E = E1/E + E2/E.
    #[test]
    fn lemma_6_3_1(e1 in arb_regex(), e2 in arb_regex(), e in arb_regex()) {
        let (l1, l2, l) = (lang(&e1), lang(&e2), lang(&e));
        prop_assert_eq!(
            l1.union(&l2).right_quotient(&l),
            l1.right_quotient(&l).union(&l2.right_quotient(&l))
        );
    }

    /// Lemma 6.3(2): E\(E1 + E2) = E\E1 + E\E2.
    #[test]
    fn lemma_6_3_2(e1 in arb_regex(), e2 in arb_regex(), e in arb_regex()) {
        let (l1, l2, l) = (lang(&e1), lang(&e2), lang(&e));
        prop_assert_eq!(
            l1.union(&l2).left_quotient(&l),
            l1.left_quotient(&l).union(&l2.left_quotient(&l))
        );
    }

    /// Lemma 6.3(3): E/(E1 + E2) = E/E1 + E/E2.
    #[test]
    fn lemma_6_3_3(e1 in arb_regex(), e2 in arb_regex(), e in arb_regex()) {
        let (l1, l2, l) = (lang(&e1), lang(&e2), lang(&e));
        prop_assert_eq!(
            l.right_quotient(&l1.union(&l2)),
            l.right_quotient(&l1).union(&l.right_quotient(&l2))
        );
    }

    /// Lemma 6.3(4): (E1 + E2)\E = E1\E + E2\E (dividing by a union).
    #[test]
    fn lemma_6_3_4(e1 in arb_regex(), e2 in arb_regex(), e in arb_regex()) {
        let (l1, l2, l) = (lang(&e1), lang(&e2), lang(&e));
        prop_assert_eq!(
            l.left_quotient(&l1.union(&l2)),
            l.left_quotient(&l1).union(&l.left_quotient(&l2))
        );
    }

    /// Lemma 6.3(5): (E1·E2)/(p·Σ*) = E1/(p·Σ*) + E1·(E2/(p·Σ*)).
    #[test]
    fn lemma_6_3_5(e1 in arb_regex(), e2 in arb_regex()) {
        let (l1, l2) = (lang(&e1), lang(&e2));
        let by = p_sigma();
        // The identity as stated needs ε ∈ E2-side care: α ∈ E1/(p·Σ*)
        // contributes only when E2 ≠ ∅.
        prop_assume!(!l2.is_empty());
        prop_assert_eq!(
            l1.concat(&l2).right_quotient(&by),
            l1.right_quotient(&by).union(&l1.concat(&l2.right_quotient(&by)))
        );
    }

    /// Lemma 6.4(1)+(2): E⟨p⟩Σ* unambiguous ⟺ (E·p)\E = ∅ ⟺
    /// E/(p·Σ*) ∩ E = ∅.
    #[test]
    fn lemma_6_4_1_2(e in arb_regex()) {
        let a = alphabet();
        let l = lang(&e);
        let p = Lang::sym(&a, a.sym("p"));
        let expr = ExtractionExpr::from_langs(l.clone(), a.sym("p"), Lang::universe(&a));
        let via_def = expr.is_unambiguous();
        let via_left = l.left_quotient(&l.concat(&p)).is_empty();
        let via_quot = l.right_quotient(&p_sigma()).intersect(&l).is_empty();
        prop_assert_eq!(via_def, via_left);
        prop_assert_eq!(via_def, via_quot);
    }

    /// Lemma 6.4(4)+(5): the levels E‖ⁿ_p are empty from some point on iff
    /// the marker count is bounded, and never "come back" after an empty
    /// level within the prefix language F = E/(p·Σ*).
    #[test]
    fn lemma_6_4_4_5(e in arb_regex()) {
        let a = alphabet();
        let p = a.sym("p");
        let f = lang(&e).right_quotient(&p_sigma());
        let mut empty_seen = false;
        for n in 0..6 {
            let is_empty = filter_exact(&f, p, n).is_empty();
            if empty_seen {
                prop_assert!(is_empty, "level {n} non-empty after an empty level");
            }
            empty_seen = empty_seen || is_empty;
        }
        // Bounded count ⟺ some level empty (within the probe range when
        // the bound is small enough to observe).
        if let Some(bound) = f.max_marker_count(p) {
            if bound < 5 {
                prop_assert!(filter_exact(&f, p, bound + 1).is_empty());
                if !f.is_empty() {
                    prop_assert!(!filter_exact(&f, p, bound).is_empty());
                }
            }
        }
    }

    /// Lemma 6.3(7): E1 ⊆ E2/(p·Σ*) ⟹ E1/(p·Σ*) ⊆ E2/(p·Σ*).
    #[test]
    fn lemma_6_3_7(e2 in arb_regex()) {
        let by = p_sigma();
        let l2q = lang(&e2).right_quotient(&by);
        // Take E1 = the quotient itself (the largest legal choice).
        prop_assert!(l2q.right_quotient(&by).is_subset_of(&l2q));
    }

    /// Quotient by ε and by ∅ behave as units/annihilators.
    #[test]
    fn quotient_units(e in arb_regex()) {
        let a = alphabet();
        let l = lang(&e);
        let eps = Lang::epsilon(&a);
        let empty = Lang::empty(&a);
        prop_assert_eq!(l.right_quotient(&eps), l.clone());
        prop_assert_eq!(l.left_quotient(&eps), l.clone());
        prop_assert!(l.right_quotient(&empty).is_empty());
        prop_assert!(l.left_quotient(&empty).is_empty());
    }
}

/// Lemma 6.3(4) in the paper is stated as `(E1+E2)E = E1E + E2E`
/// (concatenation distributes over union) — trivially true of our
/// constructors; checked once concretely.
#[test]
fn concat_distributes_over_union() {
    let a = alphabet();
    let x = Lang::parse(&a, "p | q q").unwrap();
    let y = Lang::parse(&a, "r*").unwrap();
    let z = Lang::parse(&a, "p q").unwrap();
    assert_eq!(x.union(&y).concat(&z), x.concat(&z).union(&y.concat(&z)));
}
