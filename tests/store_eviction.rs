//! Eviction tests for the interned language store's bounded op cache.
//!
//! These live in their own test binary on purpose: `Store::
//! set_op_cache_capacity` is process-global, and flipping it mid-flight
//! would skew the hit/miss assertions in `tests/store.rs`. Within this
//! binary the tests serialize on a mutex for the same reason.

use proptest::prelude::*;
use rextract::automata::{Alphabet, Lang, Regex, Store};
use std::sync::Mutex;

/// Serializes the tests in this binary: each one reconfigures the
/// process-global op-cache capacity.
static CAPACITY_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CAPACITY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn alphabet_of(n: usize) -> Alphabet {
    Alphabet::new((0..n).map(|i| format!("t{i}")))
}

fn arb_regex(n: usize) -> impl Strategy<Value = Regex> {
    let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
    let leaf = prop_oneof![
        1 => Just(Regex::Epsilon),
        6 => proptest::sample::subsequence(names, 1..=2).prop_map(move |picked| {
            let a = alphabet_of(n);
            let mut set = a.empty_set();
            for name in picked {
                set.insert(a.sym(&name));
            }
            Regex::class(set)
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Regex::concat([x, y])),
            3 => (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt([x, y])),
            2 => inner.clone().prop_map(Regex::star),
            1 => (inner.clone(), inner.clone()).prop_map(|(x, y)| x.diff(y)),
        ]
    })
}

/// All binary/unary ops plus decision procedures through both paths; the
/// two must agree operation by operation even while the cached path is
/// evicting (an evicted entry is recomputed from the same canonical DFAs,
/// so agreement is exactly "eviction is semantically invisible").
fn check_ops_agree(a: &Alphabet, x: &Regex, y: &Regex) {
    let cached = Store::global();
    let uncached = Store::uncached();
    let lx = Lang::from_regex(a, x);
    let ly = Lang::from_regex(a, y);
    assert_eq!(cached.union(&lx, &ly), uncached.union(&lx, &ly));
    assert_eq!(cached.intersect(&lx, &ly), uncached.intersect(&lx, &ly));
    assert_eq!(cached.difference(&lx, &ly), uncached.difference(&lx, &ly));
    assert_eq!(cached.concat(&lx, &ly), uncached.concat(&lx, &ly));
    assert_eq!(cached.complement(&lx), uncached.complement(&lx));
    assert_eq!(cached.star(&lx), uncached.star(&lx));
    assert_eq!(cached.reversed(&lx), uncached.reversed(&lx));
    assert_eq!(
        cached.right_quotient(&lx, &ly),
        uncached.right_quotient(&lx, &ly)
    );
    assert_eq!(
        cached.left_quotient(&lx, &ly),
        uncached.left_quotient(&lx, &ly)
    );
    assert_eq!(cached.is_empty(&lx), uncached.is_empty(&lx));
    assert_eq!(cached.is_universal(&lx), uncached.is_universal(&lx));
    assert_eq!(cached.is_subset(&lx, &ly), uncached.is_subset(&lx, &ly));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A pathologically tiny cache (8 entries — every case sweeps) must
    /// still agree with the uncached store on every operation.
    #[test]
    fn eviction_is_semantically_invisible(x in arb_regex(3), y in arb_regex(3)) {
        let _guard = lock();
        Store::set_op_cache_capacity(Some(8));
        check_ops_agree(&alphabet_of(3), &x, &y);
        prop_assert!(
            Store::stats().op_cache_size <= 8,
            "cache exceeded its bound: {}",
            Store::stats().summary()
        );
        Store::set_op_cache_capacity(None);
    }
}

/// Evictions fire once the configured bound is exceeded, the stats
/// counters record them, and the cache never ends a sweep above capacity.
#[test]
fn evictions_fire_at_the_configured_bound() {
    let _guard = lock();
    let a = alphabet_of(4);
    const CAP: usize = 16;
    Store::set_op_cache_capacity(Some(CAP));
    let before = Store::stats();

    // Far more distinct operations than CAP: pairwise ops over a family
    // of distinct languages t_i t_j* (i≠j).
    let langs: Vec<Lang> = (0..4)
        .flat_map(|i| (0..4).filter(move |&j| j != i).map(move |j| (i, j)))
        .map(|(i, j)| Lang::parse(&a, &format!("t{i} t{j}*")).unwrap())
        .collect();
    let s = Store::global();
    for x in &langs {
        for y in &langs {
            let _ = s.union(x, y);
            let _ = s.intersect(x, y);
        }
    }

    let after = Store::stats().since(&before);
    assert!(
        after.evictions > 0,
        "no evictions despite {} misses against a {CAP}-entry bound: {}",
        after.misses(),
        after.summary()
    );
    assert!(
        after.sweeps > 0,
        "evictions without sweeps: {}",
        after.summary()
    );
    let stats = Store::stats();
    assert_eq!(stats.op_cache_capacity, Some(CAP as u64));
    assert!(
        stats.op_cache_size <= CAP as u64,
        "cache ended above its bound: {}",
        stats.summary()
    );
    // The summary surfaces the eviction telemetry for operators.
    let summary = stats.summary();
    assert!(
        summary.contains("evicted"),
        "summary hides evictions: {summary}"
    );
    Store::set_op_cache_capacity(None);
}

/// Re-miss accounting: repeating the same workload against a cache too
/// small to hold it records misses on keys that were previously evicted.
#[test]
fn re_misses_are_detected_for_thrashing_workloads() {
    let _guard = lock();
    let a = alphabet_of(4);
    Store::set_op_cache_capacity(Some(4));
    let before = Store::stats();
    let langs: Vec<Lang> = (0..4)
        .map(|i| Lang::parse(&a, &format!("t{i}*")).unwrap())
        .collect();
    let s = Store::global();
    // Two passes over a working set much larger than the bound: the
    // second pass re-misses entries the first pass had cached and lost.
    for _ in 0..2 {
        for x in &langs {
            for y in &langs {
                let _ = s.concat(x, y);
                let _ = s.difference(x, y);
            }
        }
    }
    let after = Store::stats().since(&before);
    assert!(
        after.re_misses > 0,
        "thrashing workload recorded no re-misses: {}",
        after.summary()
    );
    Store::set_op_cache_capacity(None);
}

/// Shrinking the capacity below the current population evicts immediately;
/// clearing the bound lets the cache grow again.
#[test]
fn capacity_changes_apply_immediately() {
    let _guard = lock();
    let a = alphabet_of(3);
    Store::set_op_cache_capacity(None);
    let langs: Vec<Lang> = (0..3)
        .map(|i| Lang::parse(&a, &format!("t{i} t{i}*")).unwrap())
        .collect();
    let s = Store::global();
    for x in &langs {
        for y in &langs {
            let _ = s.union(x, y);
        }
    }
    assert!(Store::stats().op_cache_size >= 3);
    Store::set_op_cache_capacity(Some(2));
    assert!(
        Store::stats().op_cache_size <= 2,
        "shrinking the bound must evict immediately: {}",
        Store::stats().summary()
    );
    assert_eq!(Store::op_cache_capacity(), Some(2));
    Store::set_op_cache_capacity(None);
    assert_eq!(Store::op_cache_capacity(), None);
}
