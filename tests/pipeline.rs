//! Integration test: the wrapper pipeline end to end on the synthetic
//! catalog site — training, extraction across layout families, resilience
//! under perturbation, and failure-mode behaviour.

use rextract::learn::perturb::Perturber;
use rextract::wrapper::report::resilience_table;
use rextract::wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract::wrapper::wrapper::{TrainPage, Wrapper, WrapperConfig, WrapperError};

fn site(seed: u64) -> SiteGenerator {
    SiteGenerator::new(SiteConfig {
        seed,
        ..SiteConfig::default()
    })
}

fn train(maximize: bool, seed: u64) -> Wrapper {
    let mut g = site(seed);
    let pages = vec![
        TrainPage::from(&g.page_with_style(PageStyle::Plain)),
        TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
    ];
    Wrapper::train(
        &pages,
        WrapperConfig {
            maximize,
            ..WrapperConfig::default()
        },
    )
    .expect("training succeeds")
}

#[test]
fn wrapper_extracts_across_all_layout_families() {
    let w = train(true, 8);
    for style in [PageStyle::Plain, PageStyle::TableEmbedded, PageStyle::Busy] {
        let mut g = site(404);
        let mut ok = 0;
        for _ in 0..25 {
            let p = g.page_with_style(style);
            if w.extract_target(&p.tokens) == Ok(p.target) {
                ok += 1;
            }
        }
        assert!(ok >= 23, "style {style:?}: only {ok}/25 extracted");
    }
}

#[test]
fn learned_expression_is_maximal_and_unambiguous() {
    let w = train(true, 15);
    assert!(w.is_maximized());
    assert!(w.expr().is_unambiguous());
    assert!(w.expr().is_maximal());
}

#[test]
fn resilience_is_monotone_ish_and_dominates_initial() {
    let maxed = train(true, 3);
    let raw = train(false, 3);
    let mut g = site(2_222);
    let table = resilience_table(
        &[("maximized", &maxed), ("initial", &raw)],
        &mut g,
        5,
        &[0, 2, 6],
        60,
    );
    // Maximized wrapper: perfect on unedited pages, dominant throughout.
    assert_eq!(table.rows[0].successes[0], 60, "{table}");
    for row in &table.rows {
        assert!(
            row.successes[0] >= row.successes[1],
            "initial beat maximized at {} edits\n{table}",
            row.edits
        );
    }
    // And strictly better somewhere: maximization must buy something.
    assert!(
        table.rows.iter().any(|r| r.successes[0] > r.successes[1]),
        "maximization bought nothing\n{table}"
    );
}

#[test]
fn wrapper_failure_is_reported_not_mislocated() {
    // Feed a page with no form at all: the wrapper must error (NoMatch),
    // never silently return a wrong token.
    let w = train(true, 21);
    let tokens = rextract::html::tokenizer::tokenize(
        "<table><tr><td><a href=\"x.html\">nothing here</a></td></tr></table>",
    );
    match w.extract_target(&tokens) {
        Err(WrapperError::Extract(_)) => {}
        other => panic!("expected extraction failure, got {other:?}"),
    }
}

#[test]
fn heavy_perturbation_degrades_gracefully() {
    let w = train(true, 33);
    let mut g = site(777);
    let mut perturber = Perturber::new(31);
    let mut outcomes = [0usize; 3]; // correct, wrong, failed
    for _ in 0..40 {
        let p = g.page();
        let edited = perturber.perturb(&p.tokens, p.target, 12);
        match w.extract_target(&edited.tokens) {
            Ok(i) if i == edited.target => outcomes[0] += 1,
            Ok(_) => outcomes[1] += 1,
            Err(_) => outcomes[2] += 1,
        }
    }
    // Under 12 random structural edits some failures are expected, but
    // wrong *silent* extractions must stay rare: unambiguity means the
    // expression refuses rather than guesses. Allow a small number of
    // honest mislocations (an edit can move another INPUT into the
    // learned context).
    assert!(
        outcomes[1] <= 8,
        "too many silent mislocations: {outcomes:?}"
    );
    assert!(outcomes[0] >= 10, "resilience collapsed: {outcomes:?}");
}

#[test]
fn single_sample_training_works() {
    let mut g = site(61);
    let page = g.page_with_style(PageStyle::TableEmbedded);
    let w = Wrapper::train(&[TrainPage::from(&page)], WrapperConfig::default()).unwrap();
    assert_eq!(w.extract_target(&page.tokens), Ok(page.target));
    // A maximized single-sample wrapper should still absorb benign edits.
    let mut perturber = Perturber::new(5);
    let edited = perturber.perturb(&page.tokens, page.target, 1);
    let got = w.extract_target(&edited.tokens);
    assert!(
        got == Ok(edited.target) || got.is_err(),
        "silent mislocation on single-sample wrapper: {got:?}"
    );
}

#[test]
fn wrappers_trained_on_different_seeds_agree_on_clean_pages() {
    let w1 = train(true, 100);
    let w2 = train(true, 200);
    let mut g = site(300);
    for _ in 0..10 {
        let p = g.page();
        assert_eq!(
            w1.extract_target(&p.tokens).ok(),
            w2.extract_target(&p.tokens).ok()
        );
    }
}
