//! Integration test: the framework's documented limitations (Section 8).
//!
//! "…we cannot learn or generalize extraction expressions that can be
//! expressed only using context-free grammars. A typical example here is
//! extracting the middle row from dynamically generated tables. … The
//! desired pattern to learn here is TRⁿ⟨TR⟩TRⁿ, but the language
//! recognized by this expression is not regular."
//!
//! We demonstrate the limitation *empirically*, the way a user would hit
//! it: train on middle-row samples of sizes 1..=k, observe that the
//! learned (regular!) expression cannot be simultaneously correct for the
//! next size — while the same pipeline nails anchor-based targets of any
//! size.

use rextract::automata::Alphabet;
use rextract::extraction::ExtractionExpr;
use rextract::learn::merge::merge_samples;
use rextract::learn::MarkedSeq;

fn alphabet() -> Alphabet {
    Alphabet::new(["TR", "TD", "TABLE", "/TABLE"])
}

/// The middle-row document of half-width `n`: `TRⁿ ⟨TR⟩ TRⁿ`.
fn middle_row(n: usize) -> MarkedSeq {
    let mut names = vec!["TR".to_string(); 2 * n + 1];
    names.insert(0, "TABLE".into());
    names.push("/TABLE".into());
    let _ = &mut names;
    MarkedSeq::new(names, n + 1)
}

#[test]
fn middle_row_training_does_not_generalize_to_next_size() {
    let sigma = alphabet();
    // Train on half-widths 1..=3.
    let samples: Vec<MarkedSeq> = (1..=3).map(middle_row).collect();
    let merged = merge_samples(&sigma, &samples).expect("merging itself works");
    let expr = merged.to_expr();

    // The merged expression handles each *training* size…
    for s in &samples {
        let word: Vec<_> = s.names.iter().map(|n| sigma.sym(n)).collect();
        let got = expr.extract(&word).map(|e| e.position);
        // …either correctly or by refusing; but never a silent wrong row
        // on training data.
        if let Ok(pos) = got {
            assert_eq!(pos, s.target, "wrong row on training size");
        }
    }

    // …but must fail on the next size: a regular expression cannot count
    // matching TRⁿ on both sides. Either it does not parse the document,
    // reports ambiguity, or points at a non-middle row.
    let next = middle_row(4);
    let word: Vec<_> = next.names.iter().map(|n| sigma.sym(n)).collect();
    let got = expr.extract(&word).map(|e| e.position);
    assert_ne!(
        got,
        Ok(next.target),
        "a regular expression cannot extract the middle row at unseen sizes \
         (Section 8) — if this ever passes, something is wrong with the test"
    );
}

#[test]
fn even_maximal_expressions_cannot_mark_the_middle_row() {
    // Stronger: *no* extraction expression over this alphabet can be
    // right for all sizes. Take any candidate that is correct for
    // half-widths up to 3 and show a direct counterexample by pumping —
    // here we just exhibit the canonical failure for the natural
    // candidate TR⟨TR⟩TR-with-context generalizations.
    let sigma = alphabet();
    // "the TR preceded by exactly one TR": right for n=1 only.
    let e1 = ExtractionExpr::parse(&sigma, "TABLE TR <TR> TR* /TABLE").unwrap();
    let doc = |n: usize| {
        let s = middle_row(n);
        s.names.iter().map(|m| sigma.sym(m)).collect::<Vec<_>>()
    };
    assert_eq!(e1.extract(&doc(1)).map(|e| e.position), Ok(2));
    assert_ne!(e1.extract(&doc(2)).map(|e| e.position), Ok(3));
}

#[test]
fn anchor_based_targets_generalize_across_sizes_fine() {
    // Contrast: "the first TD after the TABLE" is regular, and the same
    // pipeline learns it from two sizes and nails every other size.
    let sigma = alphabet();
    let make = |n: usize| {
        let mut names = vec!["TABLE".to_string()];
        names.extend(std::iter::repeat_n("TR".to_string(), n));
        names.push("TD".into());
        let target = names.len() - 1;
        names.push("/TABLE".into());
        MarkedSeq::new(names, target)
    };
    let merged = merge_samples(&sigma, &[make(1), make(3)]).unwrap();
    let maximal = merged.maximize().expect("maximizable");
    assert!(maximal.is_maximal());
    // n ≥ 1: both training samples contained a TR, so the learner
    // (correctly, given its evidence) anchors on one; sizes with ≥1 TR
    // are the family the samples actually exhibit.
    for n in 1..9 {
        let s = make(n);
        let word: Vec<_> = s.names.iter().map(|m| sigma.sym(m)).collect();
        assert_eq!(
            maximal.extract(&word).map(|e| e.position),
            Ok(s.target),
            "anchor target failed at size {n}"
        );
    }
}
