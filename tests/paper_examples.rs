//! Integration test: every concrete example stated inline in the paper,
//! Sections 3–6, verified against our implementation. One test per paper
//! location, so a failure names the claim it violates.

use rextract::automata::{Alphabet, Lang};
use rextract::extraction::left_filter::left_filter_maximize;
use rextract::extraction::maximality::MaximalityStatus;
use rextract::extraction::oracle::count_splits;
use rextract::extraction::ExtractionExpr;

fn ab() -> Alphabet {
    Alphabet::new(["p", "q"])
}

fn e(s: &str) -> ExtractionExpr {
    ExtractionExpr::parse(&ab(), s).unwrap()
}

fn syms(s: &str) -> Vec<rextract::automata::Symbol> {
    ab().str_to_syms(s).unwrap()
}

/// Section 3: "We do not need to think hard to find such a generalization:
/// Tags* ⟨INPUT⟩ Tags*" — the fully general expression is ambiguous.
#[test]
fn section_3_sigma_star_marker_sigma_star_is_ambiguous() {
    assert!(e(".* <p> .*").is_ambiguous());
}

/// Section 4's distinction (illustrated in the Section 3 prose): an
/// expression is unambiguous when the *split* is unique — "even though the
/// prefix … can match the prefix of a string in more than one way".
/// `(q | q q)*` matches `qqq` with several parse trees, yet the marked
/// position never moves.
#[test]
fn section_3_prefix_nondeterminism_is_not_ambiguity() {
    let expr = e("(q | q q)* <p> q*");
    assert!(expr.is_unambiguous());
    assert_eq!(count_splits(&expr, &syms("q q q p q")), 1);
    // Contrast: move the nondeterminism across the marker and ambiguity
    // appears.
    let bad = e("(p | p p)* <p> p*");
    assert!(bad.is_ambiguous());
}

/// Section 4: "p*⟨p⟩q parses ppq" and the split is unique; "any one of
/// three p's in pppq can be returned" for p*⟨p⟩p*q.
#[test]
fn section_4_split_counting() {
    assert_eq!(count_splits(&e("p* <p> q"), &syms("p p q")), 1);
    assert_eq!(count_splits(&e("p* <p> p* q"), &syms("p p p q")), 3);
}

/// Example 4.3: the four classified expressions.
#[test]
fn example_4_3() {
    assert!(e("(p q)* <p> .*").is_ambiguous());
    assert!(e("(p | p p) <p> (p | p p)").is_ambiguous());
    assert!(e("(q p)* <p> .*").is_unambiguous());
    // The paper's fourth: (p|pp)⟨p⟩(~|p|pp)-style… its readable variant
    // (p|pp)(p)(p|pp) already covered; the unambiguous pair it contrasts:
    assert!(e("[^p]* <p> .*").is_unambiguous());
    // "pppp can be parsed by (p|pp)⟨p⟩(p|pp) in two different ways":
    assert_eq!(
        count_splits(&e("(p | p p) <p> (p | p p)"), &syms("p p p p")),
        2
    );
    // "pqpq can be parsed as ε·p·qpq and as pq·p·q" — the language of
    // (pq)*⟨p⟩Σ* on pqpq:
    assert_eq!(count_splits(&e("(p q)* <p> .*"), &syms("p q p q")), 2);
}

/// Definition 4.4 discussion: ≼ implies language inclusion but not
/// conversely — p⟨p⟩ppp vs pp⟨p⟩pp.
#[test]
fn definition_4_4_language_vs_order() {
    let x = e("p <p> p p p");
    let y = e("p p <p> p p");
    assert_eq!(x.language(), y.language());
    assert!(!x.generalizes(&y) && !y.generalizes(&x));
    // And they really extract different occurrences on the only member.
    let w = syms("p p p p p");
    assert_eq!(x.extract(&w).map(|h| h.position), Ok(1));
    assert_eq!(y.extract(&w).map(|h| h.position), Ok(2));
}

/// Example 4.6: (Σ−p)*⟨p⟩Σ* is maximal.
#[test]
fn example_4_6() {
    assert!(e("[^p]* <p> .*").is_maximal());
}

/// Example 4.7: qp⟨p⟩Σ* can be maximized to (Σ−p)*·p·(Σ−p)*⟨p⟩Σ* and to
/// the Algorithm 6.2 output — two different maximal expressions above the
/// same input ("even when maximization is known to exist then it might
/// not be unique").
#[test]
fn example_4_7_two_distinct_maximizations() {
    let input = e("q p <p> .*");
    assert!(input.is_unambiguous());
    assert!(matches!(
        input.maximality(),
        MaximalityStatus::NonMaximal(_)
    ));

    let m1 = e("[^p]* p [^p]* <p> .*");
    let m2 = left_filter_maximize(&input).unwrap();
    for m in [&m1, &m2] {
        assert!(m.is_maximal());
        assert!(m.generalizes(&input));
    }
    assert!(!m1.same_extraction(&m2));
    // The two maxima disagree concretely: on "p p" (no q prefix),
    // m1 marks the second p; m2 = (q·Σ·q*)?⟨p⟩Σ* marks the first.
    let w = syms("p p");
    assert_eq!(m1.extract(&w).map(|h| h.position), Ok(1));
    assert_eq!(m2.extract(&w).map(|h| h.position), Ok(0));
}

/// Proposition 5.11: (Σ−p)*⟨p⟩E is maximal iff L(E) = Σ*, over several E.
#[test]
fn proposition_5_11_sweep() {
    let cases = [
        (".*", true),
        ("q*", false),
        ("~", false),
        ("(p | q)*", true),
        (".* - p", false),
        ("~ | . .*", true),
    ];
    for (right, want) in cases {
        let expr = e(&format!("[^p]* <p> {right}"));
        assert!(expr.is_unambiguous(), "Lemma 5.10 for E = {right}");
        assert_eq!(expr.is_maximal(), want, "Prop 5.11 for E = {right}");
    }
}

/// Lemma 5.10: (Σ−p)*⟨p⟩E is unambiguous for ANY E — stress with
/// adversarial right sides.
#[test]
fn lemma_5_10_any_right_side() {
    for right in ["p*", "(p p)*", ".* p .*", "p | ~", "!(q*)"] {
        assert!(
            e(&format!("[^p]* <p> {right}")).is_unambiguous(),
            "Lemma 5.10 failed for E = {right}"
        );
    }
}

/// Section 6 intro: "if (E1·p)\E1 = ∅, then … E1⟨p⟩E2 ≼ E1⟨p⟩Σ*" — the
/// first generalization step of left-filtering.
#[test]
fn section_6_widening_the_right_side() {
    let a = ab();
    let narrow = e("q p <p> q q");
    let wide = e("q p <p> .*");
    assert!(narrow.is_unambiguous());
    // (E1·p)\E1 = ∅ here:
    let e1 = narrow.left();
    let p = Lang::sym(&a, a.sym("p"));
    assert!(e1.left_quotient(&e1.concat(&p)).is_empty());
    assert!(wide.generalizes(&narrow));
    assert!(wide.is_unambiguous());
}
