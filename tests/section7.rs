//! Integration test: the complete Section 7 worked example, cross-crate.
//!
//! Replays "Putting it All Together" on the exact Figure 1 documents and
//! checks every claim the paper makes along the way.

use rextract::automata::Lang;
use rextract::extraction::left_filter::left_filter_maximize_lang;
use rextract::extraction::ExtractionExpr;
use rextract::html::seq::{SeqConfig, Vocabulary};
use rextract::html::tokenizer::tokenize;
use rextract::learn::merge::merge_samples;
use rextract::learn::MarkedSeq;

const PAGE_1: &str = r#"<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>
</P>"#;

const PAGE_2: &str = r#"<table>
<tr><th><img src="supplier.gif"></th></tr>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>"#;

/// Abstract a page, marking the 2nd INPUT of the 1st FORM.
fn marked(page: &str) -> MarkedSeq {
    let toks = tokenize(page);
    let form = toks
        .iter()
        .position(|t| t.tag_name() == Some("FORM"))
        .expect("page has a form");
    let target = toks
        .iter()
        .enumerate()
        .skip(form)
        .filter(|(_, t)| t.tag_name() == Some("INPUT"))
        .map(|(i, _)| i)
        .nth(1)
        .expect("2nd input exists");
    MarkedSeq::from_tokens(&toks, target, &SeqConfig::tags_only()).expect("representable")
}

fn setup() -> (rextract::automata::Alphabet, MarkedSeq, MarkedSeq) {
    let d1 = marked(PAGE_1);
    let d2 = marked(PAGE_2);
    let mut v = Vocabulary::new();
    for s in [&d1, &d2] {
        for n in &s.names {
            v.observe_name(n);
        }
    }
    (v.alphabet(), d1, d2)
}

#[test]
fn tag_sequences_match_the_papers_representation() {
    let d1 = marked(PAGE_1);
    // Section 3: "P H1 /H1 P FORM INPUT ⟨INPUT⟩ BR INPUT INPUT /FORM /P"
    // (we keep BR; the paper elides it in one rendering and keeps the
    // spirit: tags only, target = 2nd INPUT).
    assert_eq!(d1.names[..6], ["P", "H1", "/H1", "P", "FORM", "INPUT"]);
    assert_eq!(d1.target_name(), "INPUT");
    assert_eq!(d1.target, 6);

    let d2 = marked(PAGE_2);
    assert_eq!(d2.names[0], "TABLE");
    assert!(d2.names.contains(&"FORM".to_string()));
    assert_eq!(d2.target_name(), "INPUT");
}

/// The paper's Expression (10), as an explicit pivot form:
///   ((P H1 /H1 P) | (TABLE TR … /TR)) FORM (TR TD)? INPUT (/TD TD)? ⟨INPUT⟩ Tags*
fn expression_10(sigma: &rextract::automata::Alphabet) -> rextract::extraction::PivotExpr {
    let header = Lang::parse(
        sigma,
        "(P H1 /H1 P) | (TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR TR TD)",
    )
    .unwrap();
    let gap1 = Lang::parse(sigma, "(TR TD)?").unwrap();
    let gap2 = Lang::parse(sigma, "(/TD TD)?").unwrap();
    rextract::extraction::PivotExpr::new(
        sigma,
        vec![(header, sigma.sym("FORM")), (gap1, sigma.sym("INPUT"))],
        gap2,
        sigma.sym("INPUT"),
    )
}

#[test]
fn merged_expression_refines_expression_10_structure() {
    let (sigma, d1, d2) = setup();
    let pe = merge_samples(&sigma, &[d1.clone(), d2.clone()]).unwrap();

    // The paper's Expression (10) anchors on FORM and INPUT; our
    // left-to-right heuristic additionally anchors on the shared title
    // tags H1 and /H1 — a refinement, not a divergence: FORM and INPUT
    // must still be pivots, in that order, closest to the marker.
    let pivots: Vec<&str> = pe.segments().iter().map(|(_, q)| sigma.name(*q)).collect();
    assert!(pivots.len() >= 2);
    assert_eq!(&pivots[pivots.len() - 2..], ["FORM", "INPUT"]);

    // The merged expression is unambiguous (the paper: "By Proposition
    // 5.4, this expression is unambiguous") but NOT maximal.
    let expr = pe.to_expr();
    assert!(expr.is_unambiguous());
    assert!(!expr.is_maximal());
    // And it parses both training documents at the right position.
    for doc in [&d1, &d2] {
        let word: Vec<_> = doc.names.iter().map(|n| sigma.sym(n)).collect();
        assert_eq!(expr.extract(&word).map(|e| e.position), Ok(doc.target));
    }
}

#[test]
fn expression_10_is_unambiguous_but_not_maximal() {
    let (sigma, d1, d2) = setup();
    let expr10 = expression_10(&sigma).to_expr();
    assert!(
        expr10.is_unambiguous(),
        "paper: Expression (10) is unambiguous"
    );
    assert!(
        !expr10.is_maximal(),
        "paper: Expression (10) is not maximal"
    );
    // It parses both Figure 1 documents at the right position.
    for doc in [&d1, &d2] {
        let word: Vec<_> = doc.names.iter().map(|n| sigma.sym(n)).collect();
        assert_eq!(expr10.extract(&word).map(|e| e.position), Ok(doc.target));
    }
}

#[test]
fn pivot_maximization_yields_the_papers_final_expression() {
    let (sigma, _, _) = setup();
    let pe = expression_10(&sigma);
    let maximal = pe
        .maximize()
        .expect("conditions for pivot maximization are satisfied");

    assert!(maximal.is_unambiguous());
    assert!(maximal.is_maximal());
    assert!(maximal.generalizes(&pe.to_expr()));

    // The paper's final expression:
    //   (Tags−FORM)* FORM (Tags−INPUT)* INPUT (Tags−INPUT)* ⟨INPUT⟩ Tags*
    let paper_final =
        ExtractionExpr::parse(&sigma, "[^FORM]* FORM [^INPUT]* INPUT [^INPUT]* <INPUT> .*")
            .unwrap();
    assert!(
        maximal.same_extraction(&paper_final),
        "expected the paper's final expression, got {}",
        maximal.to_text()
    );
}

#[test]
fn merged_then_maximized_is_maximal_and_covers_training() {
    let (sigma, d1, d2) = setup();
    let pe = merge_samples(&sigma, &[d1.clone(), d2.clone()]).unwrap();
    let maximal = pe.maximize().expect("maximization applies");
    assert!(maximal.is_maximal());
    assert!(maximal.generalizes(&pe.to_expr()));
    for doc in [&d1, &d2] {
        let word: Vec<_> = doc.names.iter().map(|n| sigma.sym(n)).collect();
        assert_eq!(maximal.extract(&word).map(|e| e.position), Ok(doc.target));
    }
}

#[test]
fn final_expression_extracts_on_both_figure_1_pages() {
    let (sigma, d1, d2) = setup();
    let pe = merge_samples(&sigma, &[d1.clone(), d2.clone()]).unwrap();
    let maximal = pe.maximize().unwrap();
    for doc in [&d1, &d2] {
        let word: Vec<_> = doc.names.iter().map(|n| sigma.sym(n)).collect();
        assert_eq!(
            maximal.extract(&word).map(|e| e.position),
            Ok(doc.target),
            "extraction failed on {}",
            doc.to_text()
        );
    }
}

#[test]
fn semantics_second_input_in_first_form_not_second_on_page() {
    // Section 7's closing point: the pivot-maximized expression finds the
    // 2nd INPUT *of the 1st FORM*; a direct Algorithm 6.2 application
    // finds the 2nd INPUT *on the page*. Build a page whose first two
    // INPUTs precede the form to tell them apart.
    let (sigma, _, _) = setup();
    let pe = expression_10(&sigma);
    let pivot_max = pe.maximize().unwrap();

    let direct_left = left_filter_maximize_lang(pe.to_expr().left(), pe.marker()).expect("bounded");
    let direct_max = ExtractionExpr::from_langs(direct_left, pe.marker(), Lang::universe(&sigma));
    assert!(direct_max.is_maximal());

    // Both are maximal generalizations of the same input, but different.
    assert!(!pivot_max.same_extraction(&direct_max));

    // A page with two stray INPUTs before the form.
    let page = "INPUT INPUT P FORM INPUT INPUT BR INPUT /FORM";
    let word: Vec<_> = page.split_whitespace().map(|n| sigma.sym(n)).collect();
    // pivot-maximized: anchors on the first FORM, then skips one INPUT —
    // the 2nd INPUT *inside the form* = index 5.
    assert_eq!(pivot_max.extract(&word).map(|e| e.position), Ok(5));
    // direct: no FORM anchor survives — the generalized prefix accepts ε,
    // so it grabs an INPUT with no regard for the form. The two maximal
    // expressions resolve the same page to different objects, which is
    // exactly Section 7's warning about direct maximization.
    let direct_pos = direct_max.extract(&word).map(|e| e.position).unwrap();
    assert_ne!(direct_pos, 5, "direct must disagree with pivot semantics");
    assert_eq!(direct_pos, 0, "direct grabs the first page INPUT here");
}
