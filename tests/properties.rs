//! Property-based tests (proptest) over randomly generated regular
//! expressions: the paper's decision procedures must agree with their
//! definitions, and the synthesis algorithm must deliver its contract, on
//! *arbitrary* inputs — not just the hand-picked examples.

use proptest::prelude::*;
use rextract::automata::sample::enumerate_upto;
use rextract::automata::{Alphabet, Lang, Regex};
use rextract::extraction::left_filter::left_filter_maximize;
use rextract::extraction::oracle::{brute_is_ambiguous, brute_split_positions};
use rextract::extraction::{ExtractionExpr, Extractor};

fn alphabet() -> Alphabet {
    Alphabet::new(["p", "q", "r"])
}

/// Random regex AST over {p, q, r}. Extended operators get low weight —
/// they are semantically interesting but each one costs a determinization.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let a = alphabet();
    let leaf = prop_oneof![
        1 => Just(Regex::Epsilon),
        6 => proptest::sample::subsequence(vec!["p", "q", "r"], 1..=3).prop_map(move |names| {
            let mut set = alphabet().empty_set();
            for n in names {
                set.insert(alphabet().sym(n));
            }
            Regex::class(set)
        }),
    ];
    let _ = a;
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Regex::concat([x, y])),
            3 => (inner.clone(), inner.clone()).prop_map(|(x, y)| Regex::alt([x, y])),
            2 => inner.clone().prop_map(Regex::star),
            1 => inner.clone().prop_map(Regex::opt),
            1 => inner.clone().prop_map(Regex::plus),
            1 => (inner.clone(), inner.clone()).prop_map(|(x, y)| x.diff(y)),
        ]
    })
}

/// A random word over the alphabet.
fn arb_word(max_len: usize) -> impl Strategy<Value = Vec<rextract::automata::Symbol>> {
    proptest::collection::vec(0usize..3, 0..max_len).prop_map(|ixs| {
        ixs.into_iter()
            .map(rextract::automata::Symbol::from_index)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing then parsing denotes the same language.
    #[test]
    fn print_parse_round_trip(re in arb_regex()) {
        let a = alphabet();
        let text = re.to_text(&a);
        let back = Regex::parse(&a, &text).unwrap();
        prop_assert_eq!(
            Lang::from_regex(&a, &re),
            Lang::from_regex(&a, &back),
            "round trip changed language: {}", text
        );
    }

    /// Simplification preserves the language.
    #[test]
    fn simplify_preserves_language(re in arb_regex()) {
        let a = alphabet();
        prop_assert_eq!(
            Lang::from_regex(&a, &re),
            Lang::from_regex(&a, &re.simplified())
        );
    }

    /// DFA→regex state elimination preserves the language.
    #[test]
    fn to_regex_round_trip(re in arb_regex()) {
        let a = alphabet();
        let lang = Lang::from_regex(&a, &re);
        let back = Lang::from_regex(&a, &lang.to_regex());
        prop_assert_eq!(lang, back);
    }

    /// Complement and difference follow their set-theoretic definitions on
    /// sampled words.
    #[test]
    fn boolean_semantics(x in arb_regex(), y in arb_regex(), w in arb_word(8)) {
        let a = alphabet();
        let lx = Lang::from_regex(&a, &x);
        let ly = Lang::from_regex(&a, &y);
        prop_assert_eq!(lx.complement().contains(&w), !lx.contains(&w));
        prop_assert_eq!(
            lx.difference(&ly).contains(&w),
            lx.contains(&w) && !ly.contains(&w)
        );
        prop_assert_eq!(
            lx.union(&ly).contains(&w),
            lx.contains(&w) || ly.contains(&w)
        );
        prop_assert_eq!(
            lx.concat(&ly).contains(&w),
            (0..=w.len()).any(|i| lx.contains(&w[..i]) && ly.contains(&w[i..]))
        );
    }

    /// Quotients follow Definition 5.1 on sampled words (bounded witness
    /// search is exact here because the witness suffix/prefix can be taken
    /// from an enumeration of the divisor language bounded by DFA size).
    #[test]
    fn quotient_semantics(x in arb_regex(), y in arb_regex(), w in arb_word(6)) {
        let a = alphabet();
        let lx = Lang::from_regex(&a, &x);
        let ly = Lang::from_regex(&a, &y);
        // Pumping bound: |w| + states(x) + states(y) suffices for a witness.
        let bound = lx.num_states() + ly.num_states() + w.len();
        let betas = enumerate_upto(&ly, bound.min(9));
        let right = lx.right_quotient(&ly);
        let brute_right = betas.iter().any(|b| {
            let mut wb = w.clone();
            wb.extend_from_slice(b);
            lx.contains(&wb)
        });
        // Only sound when the enumeration wasn't truncated below the bound.
        if bound <= 9 {
            prop_assert_eq!(right.contains(&w), brute_right);
        } else {
            // one-sided: brute force finding a witness implies membership.
            if brute_right {
                prop_assert!(right.contains(&w));
            }
        }
    }

    /// The two polynomial ambiguity tests and the brute-force oracle agree.
    #[test]
    fn ambiguity_tests_agree(e1 in arb_regex(), e2 in arb_regex()) {
        let a = alphabet();
        let expr = ExtractionExpr::new(&a, e1, a.sym("p"), e2);
        let quotient = expr.is_ambiguous();
        prop_assert_eq!(quotient, expr.is_ambiguous_marker_test(), "5.4 vs 5.5 disagree on {}", expr.to_text());
        // Brute force is bounded; it can only under-approximate. If it
        // finds ambiguity, the tests must; if the tests say unambiguous,
        // brute force must find nothing.
        let brute = brute_is_ambiguous(&expr, 7);
        if brute {
            prop_assert!(quotient, "oracle found ambiguity the test missed: {}", expr.to_text());
        }
        if !quotient {
            prop_assert!(!brute);
        }
    }

    /// Ambiguity witnesses are genuine: both splits verify.
    #[test]
    fn ambiguity_witnesses_are_valid(e1 in arb_regex(), e2 in arb_regex()) {
        let a = alphabet();
        let expr = ExtractionExpr::new(&a, e1, a.sym("p"), e2);
        if let Some(w) = expr.ambiguity_witness() {
            let positions = brute_split_positions(&expr, &w.word);
            prop_assert!(positions.contains(&w.first_split));
            prop_assert!(positions.contains(&w.second_split));
            prop_assert!(w.first_split < w.second_split);
        }
    }

    /// The linear-time extractor agrees with the definitional split
    /// enumeration on arbitrary words (members and non-members).
    #[test]
    fn extractor_agrees_with_oracle(e1 in arb_regex(), e2 in arb_regex(), w in arb_word(10)) {
        let a = alphabet();
        let expr = ExtractionExpr::new(&a, e1, a.sym("p"), e2);
        let x = Extractor::compile(&expr);
        prop_assert_eq!(x.positions(&w), brute_split_positions(&expr, &w));
    }

    /// Proposition 6.5 on random inputs: whenever Algorithm 6.2's
    /// preconditions hold, its output generalizes the input, is
    /// unambiguous, and is maximal.
    #[test]
    fn left_filter_contract(e in arb_regex()) {
        let a = alphabet();
        let expr = ExtractionExpr::new(&a, e, a.sym("p"), Regex::universe(&a));
        if expr.is_unambiguous() && expr.left().max_marker_count(a.sym("p")).is_some() {
            let out = left_filter_maximize(&expr).unwrap();
            prop_assert!(out.generalizes(&expr), "not a generalization: {} -> {}", expr.to_text(), out.to_text());
            prop_assert!(out.is_unambiguous(), "ambiguous output: {}", out.to_text());
            prop_assert!(out.is_maximal(), "non-maximal output: {}", out.to_text());
        }
    }

    /// The two independent regex→DFA pipelines (Thompson/subset vs
    /// Brzozowski derivatives) produce the same canonical automaton.
    #[test]
    fn derivative_pipeline_agrees_with_thompson(re in arb_regex()) {
        let a = alphabet();
        let thompson = rextract::automata::Dfa::from_regex(&a, &re);
        let derivative =
            rextract::automata::regex::derivative::compile_derivative(&a, &re).minimized();
        prop_assert!(
            thompson.same_canonical(&derivative),
            "pipelines disagree on {}",
            re.to_text(&a)
        );
    }

    /// `Regex::nullable` (derivative-based, exact) agrees with actual ε
    /// membership.
    #[test]
    fn nullable_is_epsilon_membership(re in arb_regex()) {
        let a = alphabet();
        prop_assert_eq!(re.nullable(), Lang::from_regex(&a, &re).contains(&[]));
    }

    /// Minimization never changes the language (regression guard for the
    /// Hopcroft worklist bug found during Section 7 integration).
    #[test]
    fn lang_equality_is_sound(x in arb_regex(), w in arb_word(8)) {
        let a = alphabet();
        let l1 = Lang::from_regex(&a, &x);
        // Build the same language along a different operational route.
        let l2 = l1.complement().complement();
        prop_assert_eq!(&l1, &l2);
        prop_assert_eq!(l1.contains(&w), l2.contains(&w));
    }
}
