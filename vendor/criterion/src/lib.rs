//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container building this workspace has no network access, so the
//! real criterion crate cannot be fetched. This stub implements the exact
//! API surface `crates/bench` uses — `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`] — backed by a simple adaptive wall-clock timer instead of
//! criterion's statistical machinery.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! enough iterations to fill a short measurement window; the per-iteration
//! mean and a min/median/max spread over the samples are printed to
//! stdout in a stable, greppable one-line format:
//!
//! ```text
//! bench: group/id ... 12_345 ns/iter (min 11_900, med 12_300, max 13_100, 20 samples)
//! ```
//!
//! Environment knobs (both optional):
//! * `BENCH_WARMUP_MS` — warm-up budget per benchmark (default 50).
//! * `BENCH_MEASURE_MS` — measurement budget per benchmark (default 300).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-run configuration (shared by every group of one `Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    sample_size: usize,
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("BENCH_WARMUP_MS", 50),
            measure: env_ms("BENCH_MEASURE_MS", 300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Mirror of criterion's CLI-config hook; the stub has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{id}"),
            self.warmup,
            self.measure,
            self.sample_size,
            &mut f,
        );
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to report per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Accepted for API compatibility; the stub reports ns/iter only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure against one prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.warmup,
            self.criterion.measure,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmark a closure with no prepared input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.criterion.warmup,
            self.criterion.measure,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut f,
        );
        self
    }

    /// End the group (printing happens eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Handed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    mode: BencherMode,
    /// Total time spent inside the measured closure in measure mode.
    elapsed: Duration,
    /// Iterations the harness asks for in measure mode.
    iters: u64,
}

enum BencherMode {
    /// Run once per call, recording time (used to calibrate).
    Calibrate,
    /// Run `iters` times, accumulating elapsed.
    Measure,
}

impl Bencher {
    /// Time the closure. The harness calls the benchmark function several
    /// times with different internal iteration counts.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BencherMode::Calibrate => {
                let t = Instant::now();
                black_box(f());
                self.elapsed += t.elapsed();
                self.iters = 1;
            }
            BencherMode::Measure => {
                let t = Instant::now();
                for _ in 0..self.iters {
                    black_box(f());
                }
                self.elapsed += t.elapsed();
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    warmup: Duration,
    measure: Duration,
    samples: usize,
    f: &mut F,
) {
    // Calibration: single iterations until the warm-up budget is spent.
    let mut per_iter = Duration::ZERO;
    let mut calibration_runs = 0u32;
    let warm_start = Instant::now();
    while warm_start.elapsed() < warmup || calibration_runs == 0 {
        let mut b = Bencher {
            mode: BencherMode::Calibrate,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        per_iter += b.elapsed;
        calibration_runs += 1;
        if calibration_runs >= 1000 {
            break;
        }
    }
    let per_iter = per_iter / calibration_runs.max(1);

    // Choose an iteration count so one sample is ~measure/samples.
    let samples = samples.max(5);
    let sample_budget = measure / samples as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            mode: BencherMode::Measure,
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        times.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let med = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "bench: {label} ... {} ns/iter (min {}, med {}, max {}, {} samples x {} iters)",
        med as u64, min as u64, med as u64, max as u64, samples, iters
    );
}

/// Build a benchmark-group function from benchmark functions, as in
/// criterion. Only the plain `criterion_group!(name, fn, ...)` form the
/// bench crate uses is supported.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
