//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network access, so the real proptest
//! cannot be fetched. This stub re-implements the exact surface the
//! workspace's tests use — the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, [`Just`], tuple and `Range<usize>`
//! strategies, `&str` regex-pattern strategies, `collection::vec`,
//! `sample::subsequence`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros — on top of
//! a deterministic xorshift generator.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports the case number and seed;
//!   reproduce by re-running the (deterministic) test binary.
//! * **Pattern strategies** support only the subset of regex syntax the
//!   tests use: character classes with ranges, `\PC` (any non-control
//!   char), literal chars, and `{m,n}` repetition.
//! * Generation is seeded from the test name, so runs are reproducible
//!   and independent of execution order.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        type Value;

        /// Produce one value. Stubs have no shrinking, so this is the
        /// whole story.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erase into a cloneable, shareable strategy handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build recursive structures: `depth` levels of the `recurse`
        /// combinator stacked over `self` as the leaf strategy. The
        /// `_desired_size` / `_expected_branch_size` hints are accepted
        /// for API compatibility; depth alone bounds recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                let deeper = recurse(level.clone()).boxed();
                // Mix leaves back in at every level so generated values
                // span the whole size spectrum, not just maximal depth.
                level = Union::new(vec![(1, base.clone()), (3, deeper)]).boxed();
            }
            level
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Object-safe mirror of [`Strategy`] for type erasure.
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Cloneable type-erased strategy (`Rc`-shared; tests are
    /// single-threaded per `#[test]`).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Weighted choice between strategies of one value type; the engine
    /// behind `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below_u64(self.total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight arithmetic is exhaustive")
        }
    }

    /// Uniform usize in `[start, end)`.
    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl<A: Strategy> Strategy for (A,) {
        type Value = (A::Value,);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng),)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// `&str` patterns act as string strategies, interpreting the small
    /// regex subset the tests use (see the crate docs).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }

    /// Inclusive size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl SizeRange {
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi_inclusive - self.lo + 1)
        }
    }
}

pub mod collection {
    use super::strategy::{SizeRange, Strategy};
    use super::test_runner::TestRng;

    /// Vectors of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::{SizeRange, Strategy};
    use super::test_runner::TestRng;

    /// Order-preserving random subsequences of `items` with size in
    /// `size` (clamped to the number of items).
    pub fn subsequence<T: Clone>(
        items: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> SubsequenceStrategy<T> {
        SubsequenceStrategy {
            items,
            size: size.into(),
        }
    }

    pub struct SubsequenceStrategy<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.items.len();
            let lo = self.size.lo.min(n);
            let hi = self.size.hi_inclusive.min(n);
            let k = lo + rng.below(hi - lo + 1);
            // Partial Fisher–Yates over the index set, then sort to keep
            // the original order.
            let mut indices: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.below(n - i);
                indices.swap(i, j);
            }
            let mut chosen = indices[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

/// Generator for the `&str` pattern strategies. Supports literal chars,
/// `[...]` classes (with `a-z` ranges and `\x` escapes), `\PC`, and an
/// optional `{m,n}` / `{n}` repetition suffix per atom.
mod pattern {
    use super::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
        NonControl,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        // `a-z` range: a `-` between two class members.
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            let (lo, hi) = (c.min(hi), c.max(hi));
                            for code in lo as u32..=hi as u32 {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    i += 1; // consume ']'
                    assert!(!set.is_empty(), "empty character class in pattern");
                    Atom::Class(set)
                }
                '\\' => {
                    // Only `\PC` (any non-control char) is recognized as a
                    // class; any other escape is the literal escaped char.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::NonControl
                    } else {
                        i += 1;
                        let c = chars.get(i).copied().unwrap_or('\\');
                        i += 1;
                        Atom::Literal(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {m,n} or {n} repetition.
            let (min, max) = if chars.get(i) == Some(&'{') {
                i += 1;
                let mut first = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    first.push(chars[i]);
                    i += 1;
                }
                let m: usize = first.parse().expect("repetition lower bound");
                let n = if chars.get(i) == Some(&',') {
                    i += 1;
                    let mut second = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        second.push(chars[i]);
                        i += 1;
                    }
                    second.parse().expect("repetition upper bound")
                } else {
                    m
                };
                assert_eq!(chars.get(i), Some(&'}'), "unterminated repetition");
                i += 1;
                (m, n)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// A small pool of non-ASCII, non-control chars so `\PC` exercises
    /// multi-byte UTF-8 without needing full Unicode tables.
    const WIDE: &[char] = &['é', 'ß', 'Ω', 'ж', '中', '日', '€', '→', '🦀', '𝔘'];

    fn gen_non_control(rng: &mut TestRng) -> char {
        if rng.below(8) == 0 {
            WIDE[rng.below(WIDE.len())]
        } else {
            char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap()
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                    Atom::NonControl => out.push(gen_non_control(rng)),
                }
            }
        }
        out
    }
}

pub mod test_runner {
    /// Deterministic xorshift64* generator.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            // splitmix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            TestRng((z ^ (z >> 31)) | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: usize) -> usize {
            self.below_u64(n as u64) as usize
        }

        pub fn below_u64(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is ~n/2^64 — irrelevant at test-size n.
            self.next_u64() % n
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try other inputs.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` matters to this stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Run `f` for `config.cases` accepted cases, seeding
        /// deterministically from the test name. Panics (failing the
        /// enclosing `#[test]`) on the first `Fail`.
        pub fn run(
            &mut self,
            name: &str,
            mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        ) {
            let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
            });
            let mut accepted = 0u32;
            let mut rejected = 0u64;
            let mut case = 0u64;
            while accepted < self.config.cases {
                let mut rng = TestRng::from_seed(seed ^ case);
                case += 1;
                match f(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > u64::from(self.config.cases) * 64 {
                            panic!(
                                "proptest [{name}]: too many prop_assume! rejections \
                                 ({rejected}) for {} cases",
                                self.config.cases
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest [{name}] failed at case {} (seed {:#x}):\n{msg}",
                            case - 1,
                            seed ^ (case - 1)
                        );
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Weighted choice macro: `prop_oneof![w1 => strat1, w2 => strat2, ...]`.
/// Unweighted arms default to weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test block: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($(($strat),)+);
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            __runner.run(stringify!($name), |__rng| {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, __rng);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __result
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\nassertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
}

/// Like `assert_ne!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
