//! Offline stand-in for `rand`.
//!
//! The build environment has no network registry, so the real `rand`
//! cannot be fetched. This stub implements the small surface the
//! workspace actually uses — a seedable xorshift64* generator behind the
//! familiar `SeedableRng` / `RngCore` / `Rng` trait names — so callers
//! read like idiomatic `rand` code and could switch to the real crate by
//! flipping the dependency.
//!
//! The fault-injection framework (`crates/faults`) uses [`rngs::SmallRng`]
//! for its probabilistic triggers: deterministic per seed, so a chaos run
//! is reproducible.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed. Same seed ⇒ same stream, on every platform.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits → f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform draw from `[range.start, range.end)`; the range must be
    /// non-empty. Modulo bias is negligible for the small ranges used
    /// here (test workloads, jitter).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range over an empty range");
        range.start + self.next_u64() % (range.end - range.start)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64*), mirroring
    /// `rand::rngs::SmallRng`'s role: speed and reproducibility, no
    /// security claims.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // One splitmix64 round spreads low-entropy seeds (0, 1, 2…)
            // across the whole state space; xorshift requires state ≠ 0.
            let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x9e3779b97f4a7c15 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn zero_seed_works() {
        let mut r = SmallRng::seed_from_u64(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
