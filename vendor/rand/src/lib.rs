//! Offline stand-in for `rand`.
//!
//! The workspace lists `rand` as a dev-dependency but no source file uses
//! it; this empty crate lets dependency resolution succeed in the
//! network-less build environment. If randomized helpers are ever needed,
//! grow this into a small xorshift-based module (see
//! `proptest::test_runner::TestRng` in the sibling stub for the idiom).
