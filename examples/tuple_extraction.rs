//! Tuple extraction: locate the search FORM *and* its text INPUT in one
//! shot (the multi-marker extension of the paper's model; see
//! `rextract::extraction::multi`).
//!
//! A shopbot needs both: the form tells it where to POST, the field tells
//! it what to fill. Run with: `cargo run --example tuple_extraction`

use rextract::learn::perturb::Perturber;
use rextract::wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract::wrapper::tuple::{MultiTrainPage, TupleWrapper};
use rextract::wrapper::wrapper::WrapperConfig;

fn main() {
    let mut site = SiteGenerator::new(SiteConfig::default());

    // Training pages, marking FORM + its 2nd INPUT.
    let mark = |p: &rextract::wrapper::site::Page| {
        let form = p
            .tokens
            .iter()
            .position(|t| t.tag_name() == Some("FORM"))
            .expect("form");
        MultiTrainPage {
            tokens: p.tokens.clone(),
            targets: vec![form, p.target],
        }
    };
    let pages = vec![
        mark(&site.page_with_style(PageStyle::Plain)),
        mark(&site.page_with_style(PageStyle::TableEmbedded)),
    ];

    let wrapper = TupleWrapper::train(&pages, WrapperConfig::default()).unwrap();
    println!("trained: {wrapper:?}\n");

    // Fresh, perturbed pages.
    let mut fresh = SiteGenerator::new(SiteConfig {
        seed: 555,
        ..SiteConfig::default()
    });
    let mut perturber = Perturber::new(8);
    let mut hits = 0;
    let trials = 15;
    for i in 0..trials {
        let page = fresh.page();
        let edited = perturber.perturb(&page.tokens, page.target, 2);
        match wrapper.extract_targets(&edited.tokens) {
            Ok(tuple) => {
                let form = &edited.tokens[tuple[0]];
                let field = &edited.tokens[tuple[1]];
                let good = form.tag_name() == Some("FORM")
                    && field.attr("type") == Some("text")
                    && tuple[1] == edited.target;
                if good {
                    hits += 1;
                }
                println!(
                    "page {i:>2}: form@{} action={:?}  field@{} name={:?}  {}",
                    tuple[0],
                    form.attr("action"),
                    tuple[1],
                    field.attr("name"),
                    if good { "ok" } else { "MISLOCATED" }
                );
            }
            Err(e) => println!("page {i:>2}: failed ({e})"),
        }
    }
    println!("\ntuple resilience: {hits}/{trials}");
}
