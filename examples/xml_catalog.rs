//! XML + DTD-guided extraction (Section 8's future-work direction).
//!
//! An XML product catalog ships with a DTD. The DTD tells the learner
//! which elements can repeat (`item*`) — anchoring on those is fragile —
//! and which cannot (`title`, `vendor?`). The DTD-guided merge therefore
//! produces an expression that keeps finding the first item's price no
//! matter how many items the catalog grows to.
//!
//! Run with: `cargo run --example xml_catalog`

use rextract::automata::Alphabet;
use rextract::html::seq::{to_names, SeqConfig};
use rextract::html::xml::tokenize_xml;
use rextract::learn::dtd::{merge_samples_with_dtd, Dtd};
use rextract::learn::merge::merge_samples;
use rextract::learn::MarkedSeq;

const DTD: &str = r#"
    <!ELEMENT catalog (title, vendor?, item*)>
    <!ELEMENT item (name, price)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT vendor (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
"#;

const SAMPLE_1: &str = r#"<catalog>
  <title>Spring Parts</title>
  <item><name>Bolt M4</name><price>0.12</price></item>
</catalog>"#;

const SAMPLE_2: &str = r#"<catalog>
  <title>Spring Parts</title>
  <vendor>Virtual Supplier, Inc.</vendor>
  <item><name>Nut M4</name><price>0.09</price></item>
  <item><name>Washer</name><price>0.03</price></item>
</catalog>"#;

/// Grown catalog the wrapper never saw: many items, no vendor.
const FRESH: &str = r#"<catalog>
  <title>Summer Parts</title>
  <item><name>Screw</name><price>0.21</price></item>
  <item><name>Anchor</name><price>0.35</price></item>
  <item><name>Rivet</name><price>0.07</price></item>
</catalog>"#;

/// Abstract an XML document and mark the first `price` start tag.
fn marked(xml: &str) -> MarkedSeq {
    let toks = tokenize_xml(xml);
    let entries = to_names(&toks, &SeqConfig::tags_only());
    let target = entries
        .iter()
        .position(|e| e.name == "price")
        .expect("catalog has a price");
    MarkedSeq::new(entries.into_iter().map(|e| e.name).collect(), target)
}

fn main() {
    let dtd = Dtd::parse(DTD);
    let samples = [marked(SAMPLE_1), marked(SAMPLE_2)];

    let mut vocab = rextract::html::seq::Vocabulary::new();
    for s in &samples {
        for n in &s.names {
            vocab.observe_name(n);
        }
    }
    let sigma: Alphabet = vocab.alphabet();

    // Plain merge (no guidance) vs DTD-guided merge.
    let plain = merge_samples(&sigma, &samples).expect("plain merge");
    let guided = merge_samples_with_dtd(&sigma, &samples, &dtd).expect("guided merge");

    let plain_pivots: Vec<&str> = plain
        .segments()
        .iter()
        .map(|(_, q)| sigma.name(*q))
        .collect();
    let guided_pivots: Vec<&str> = guided
        .segments()
        .iter()
        .map(|(_, q)| sigma.name(*q))
        .collect();
    println!("plain pivots : {plain_pivots:?}");
    println!("guided pivots: {guided_pivots:?} (repeatable `item` excluded)");

    let plain_max = plain.maximize().expect("plain maximizes");
    let guided_max = guided.maximize().expect("guided maximizes");
    println!("\nplain expr : {}", plain_max.to_text());
    println!("guided expr: {}", guided_max.to_text());

    // Extraction on the grown catalog.
    let fresh = marked(FRESH);
    let word: Vec<_> = fresh.names.iter().map(|n| sigma.sym(n)).collect();
    println!(
        "\nfresh catalog target (first price) at position {}",
        fresh.target
    );
    println!(
        "plain  extracts: {:?}",
        plain_max.extract(&word).map(|e| e.position)
    );
    println!(
        "guided extracts: {:?}",
        guided_max.extract(&word).map(|e| e.position)
    );
}
