//! Resilience study: quantify what maximization buys (experiment E5).
//!
//! Trains two wrappers on identical samples — one keeps the raw merged
//! expression ("initial"), the other pivot-maximizes it ("maximized") —
//! and measures extraction success on fresh pages under a sweep of
//! structural edit budgets. Reproduces the paper's claim that the
//! maximization algorithms "are sufficient to provide resilient
//! extraction capabilities".
//!
//! Run with: `cargo run --release --example resilience_study`

use rextract::html::seq::SeqConfig;
use rextract::wrapper::locator::LrLocator;
use rextract::wrapper::report::resilience_table;
use rextract::wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract::wrapper::wrapper::{TrainPage, Wrapper, WrapperConfig};

fn train(maximize: bool) -> Wrapper {
    let mut g = SiteGenerator::new(SiteConfig {
        seed: 42,
        ..SiteConfig::default()
    });
    let pages = vec![
        TrainPage::from(&g.page_with_style(PageStyle::Plain)),
        TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
    ];
    Wrapper::train(
        &pages,
        WrapperConfig {
            maximize,
            ..WrapperConfig::default()
        },
    )
    .expect("training succeeds")
}

fn main() {
    let maximized = train(true);
    let initial = train(false);
    let lr = {
        let mut g = SiteGenerator::new(SiteConfig {
            seed: 42,
            ..SiteConfig::default()
        });
        let pages = vec![
            TrainPage::from(&g.page_with_style(PageStyle::Plain)),
            TrainPage::from(&g.page_with_style(PageStyle::TableEmbedded)),
        ];
        LrLocator::train(&pages, SeqConfig::tags_only()).expect("LR trains")
    };

    println!("initial expression  : {}", initial.expr().to_text());
    println!();
    println!("maximized expression: {}", maximized.expr().to_text());
    println!();
    println!(
        "LR baseline         : left={:?} target={:?} right={:?}",
        lr.wrapper().left,
        lr.wrapper().target,
        lr.wrapper().right
    );
    println!();

    let mut site = SiteGenerator::new(SiteConfig {
        seed: 31_337,
        ..SiteConfig::default()
    });
    let table = resilience_table(
        &[
            ("maximized", &maximized),
            ("initial", &initial),
            ("LR-baseline", &lr),
        ],
        &mut site,
        7,
        &[0, 1, 2, 3, 4, 6, 8, 12, 16],
        500,
    );
    println!("{table}");

    // Headline numbers.
    let last = table.rows.last().expect("rows");
    println!(
        "at {} edits: maximized {:.1}% vs initial {:.1}%",
        last.edits,
        100.0 * last.rate(0),
        100.0 * last.rate(1)
    );
}
