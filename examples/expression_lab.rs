//! Expression lab: classify and maximize expressions from the command
//! line.
//!
//! ```text
//! cargo run --example expression_lab -- "p q r" "(q p)* <p> .*"
//! cargo run --example expression_lab -- "p q" "p* <p> p* q"
//! ```
//!
//! First argument: the alphabet (whitespace-separated symbol names).
//! Second: an extraction expression in `E1 <p> E2` syntax. The lab
//! reports unambiguity (with a witness if ambiguous), maximality (with an
//! extension witness if not), the marker bound, and — when Algorithm 6.2
//! applies — the maximized expression. With no arguments it runs a tour
//! of the paper's own examples.

use rextract::automata::Alphabet;
use rextract::extraction::left_filter::left_filter_maximize;
use rextract::extraction::maximality::MaximalityStatus;
use rextract::extraction::ExtractionExpr;

fn analyze(sigma: &Alphabet, text: &str) {
    println!("──────────────────────────────────────────");
    println!("expression : {text}");
    let expr = match ExtractionExpr::parse(sigma, text) {
        Ok(e) => e,
        Err(e) => {
            println!("parse error: {e}");
            return;
        }
    };

    match expr.ambiguity_witness() {
        Some(w) => {
            println!("ambiguous  : yes");
            println!(
                "  witness  : {:?} (marker at {} or {})",
                sigma.syms_to_str(&w.word),
                w.first_split,
                w.second_split
            );
            println!("  (maximality is undefined for ambiguous expressions)");
            return;
        }
        None => println!("ambiguous  : no"),
    }

    match expr.maximality() {
        MaximalityStatus::Maximal => println!("maximal    : yes"),
        MaximalityStatus::NonMaximal(w) => {
            println!(
                "maximal    : no — side {:?} can absorb {:?}",
                w.side,
                sigma.syms_to_str(&w.string)
            );
        }
        MaximalityStatus::Ambiguous => unreachable!("checked above"),
    }

    let bound = expr.left().max_marker_count(expr.marker());
    println!("marker bound in E1: {bound:?}");

    let universal_right = expr.right() == &rextract::automata::Lang::universe(sigma);
    if universal_right && bound.is_some() {
        match left_filter_maximize(&expr) {
            Ok(maximal) => {
                println!("Algorithm 6.2 output: {}", maximal.to_text());
                println!("  maximal      : {}", maximal.is_maximal());
                println!("  generalizes  : {}", maximal.generalizes(&expr));
            }
            Err(e) => println!("Algorithm 6.2 failed: {e}"),
        }
    } else if !universal_right {
        println!("(Algorithm 6.2 needs E2 = Σ*; skipping maximization)");
    } else {
        println!("(unbounded markers in E1; plain left-filtering inapplicable — use pivots)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 2 {
        let sigma = Alphabet::new(args[0].split_whitespace().map(String::from));
        analyze(&sigma, &args[1]);
        return;
    }

    // Default tour: the paper's own examples.
    let sigma = Alphabet::new(["p", "q"]);
    println!("(no arguments given — touring the paper's examples over {{p,q}})");
    for text in [
        "(p q)* <p> .*",           // Example 4.3, ambiguous
        "(q p)* <p> .*",           // Example 4.3, unambiguous
        "(p | p p) <p> (p | p p)", // Example 4.3, ambiguous
        "[^p]* <p> .*",            // Example 4.6, maximal
        "q p <p> .*",              // Example 4.7, maximizable two ways
        "p* <p> q",                // Section 4, unambiguous
        "p* <p> p* q",             // Section 4, ambiguous (3 splits on pppq)
    ] {
        analyze(&sigma, text);
    }
}
