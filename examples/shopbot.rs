//! Shopbot: the paper's motivating scenario, end to end (Sections 1, 3, 7).
//!
//! A comparison-shopping robot must locate the search form's text field
//! (the 2nd INPUT of the 1st FORM) on vendor pages that keep changing.
//! This example:
//!
//! 1. generates two sample layouts of "Virtual Supplier, Inc." (Figure 1),
//! 2. trains a wrapper: tokenize → tag sequences → merging heuristic →
//!    pivot maximization,
//! 3. turns the site upside down (new rows, ads, re-embedding) and shows
//!    the wrapper still finds the field.
//!
//! Run with: `cargo run --example shopbot`

use rextract::learn::perturb::Perturber;
use rextract::wrapper::site::{PageStyle, SiteConfig, SiteGenerator};
use rextract::wrapper::wrapper::{TrainPage, Wrapper, WrapperConfig};

fn main() {
    // 1. Two sample pages, as a site operator might produce them.
    let mut site = SiteGenerator::new(SiteConfig::default());
    let sample_a = site.page_with_style(PageStyle::Plain);
    let sample_b = site.page_with_style(PageStyle::TableEmbedded);
    println!(
        "--- sample page A (plain layout) ---\n{}\n",
        sample_a.html()
    );
    println!(
        "--- sample page B (table layout) ---\n{}\n",
        sample_b.html()
    );

    // 2. Train.
    let wrapper = Wrapper::train(
        &[TrainPage::from(&sample_a), TrainPage::from(&sample_b)],
        WrapperConfig::default(),
    )
    .expect("training succeeds");
    println!("trained wrapper : {wrapper:?}");
    println!("maximized       : {}", wrapper.is_maximized());
    println!("maximal         : {}", wrapper.expr().is_maximal());
    println!();

    // 3. The site redesigns itself. Busy pages add navigation rows, promo
    //    links and banners the wrapper never saw.
    let mut redesigned = SiteGenerator::new(SiteConfig {
        seed: 2_001,
        vendor: "Virtual Supplier, Inc.".into(),
    });
    let mut perturber = Perturber::new(9);
    let mut found = 0;
    let trials = 25;
    for i in 0..trials {
        let page = redesigned.page_with_style(PageStyle::Busy);
        // …and on top of the new layout, random structural edits.
        let edited = perturber.perturb(&page.tokens, page.target, 2);
        match wrapper.extract_target(&edited.tokens) {
            Ok(idx) if idx == edited.target => {
                found += 1;
                if i < 3 {
                    let tok = &edited.tokens[idx];
                    println!(
                        "page {i:>2}: extracted {} (type={:?}) at token {idx}",
                        tok,
                        tok.attr("type")
                    );
                }
            }
            Ok(idx) => println!("page {i:>2}: WRONG token {idx} (wanted {})", edited.target),
            Err(e) => println!("page {i:>2}: failed: {e}"),
        }
    }
    println!("\nresilience: {found}/{trials} redesigned+edited pages extracted correctly");
}
