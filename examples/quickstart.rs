//! Quickstart: extraction expressions in five minutes.
//!
//! Walks the paper's core notions on the tiny `{p, q}` alphabet:
//! parsing, ambiguity (Definition 4.2), the resilience order (Definition
//! 4.4), maximality (Definition 4.5), maximization (Algorithm 6.2) and
//! extraction.
//!
//! Run with: `cargo run --example quickstart`

use rextract::automata::Alphabet;
use rextract::extraction::left_filter::left_filter_maximize;
use rextract::extraction::maximality::MaximalityStatus;
use rextract::extraction::ExtractionExpr;

fn main() {
    let sigma = Alphabet::new(["p", "q"]);

    // An extraction expression marks one symbol occurrence: E1 <p> E2.
    let expr = ExtractionExpr::parse(&sigma, "q p <p> .*").unwrap();
    println!("expression      : {}", expr.to_text());

    // Is it consistent? (Every parsed string must split uniquely.)
    println!("unambiguous     : {}", expr.is_unambiguous());

    // Ambiguity is observable: here is an expression that confuses a robot.
    let bad = ExtractionExpr::parse(&sigma, "p* <p> p* q").unwrap();
    let w = bad.ambiguity_witness().expect("ambiguous");
    println!(
        "ambiguous expr  : {}  (witness: {:?} splits at {} and {})",
        bad.to_text(),
        sigma.syms_to_str(&w.word),
        w.first_split,
        w.second_split
    );

    // Our unambiguous expression is not maximal — it can be generalized
    // without introducing ambiguity.
    match expr.maximality() {
        MaximalityStatus::NonMaximal(witness) => {
            println!(
                "non-maximal     : can absorb {:?} on the {:?} side",
                sigma.syms_to_str(&witness.string),
                witness.side
            );
        }
        other => println!("maximality      : {other:?}"),
    }

    // Algorithm 6.2 maximizes it in one call.
    let maximal = left_filter_maximize(&expr).unwrap();
    println!("maximized       : {}", maximal.to_text());
    println!("is maximal      : {}", maximal.is_maximal());
    println!("generalizes old : {}", maximal.generalizes(&expr));

    // Both expressions extract from the training-shaped string…
    let doc = sigma.str_to_syms("q p p q q").unwrap();
    println!(
        "extract (old)   : {:?}",
        expr.extract(&doc).map(|e| e.position)
    );
    println!(
        "extract (max)   : {:?}",
        maximal.extract(&doc).map(|e| e.position)
    );

    // …but only the maximal one survives a document change.
    let changed = sigma.str_to_syms("q q q p p q").unwrap();
    println!(
        "changed doc     : old={:?} max={:?}",
        expr.extract(&changed).map(|e| e.position),
        maximal.extract(&changed).map(|e| e.position)
    );
}
