//! # rextract — resilient data extraction from semistructured sources
//!
//! Facade crate re-exporting the full public API of the workspace. See the
//! README for an overview and `DESIGN.md` for the paper-to-module map.
//!
//! * [`automata`] — regular languages over explicit finite alphabets
//! * [`extraction`] — extraction expressions, ambiguity, maximality,
//!   maximization (the paper's contribution)
//! * [`faults`] — named failpoints for fault injection (live only with
//!   the `failpoints` feature)
//! * [`html`] — HTML tokenization and tag-sequence abstraction
//! * [`learn`] — merging heuristic, perturbations, disambiguation
//! * [`wrapper`] — end-to-end train→maximize→extract pipeline
//! * [`corpus`] — batch ingest, signature routing, provenance-tagged
//!   tuple streams
//! * [`serve`] — multi-threaded extraction daemon (wrapper registry,
//!   bounded store, live metrics)

pub use rextract_automata as automata;
pub use rextract_corpus as corpus;
pub use rextract_extraction as extraction;
pub use rextract_faults as faults;
pub use rextract_html as html;
pub use rextract_learn as learn;
pub use rextract_serve as serve;
pub use rextract_wrapper as wrapper;
