#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
# --workspace matters: the root package alone does not cover the
# `rextract` binary the smoke tests below drive.
cargo build --release --workspace

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo test (workspace, failpoints) =="
cargo test -q --workspace --features failpoints

echo "== cargo build + test (workspace, simd) =="
# The SIMD classifier must not regress the scalar-gated suite: the same
# tests run with the shuffle kernel live (runtime SSSE3 detection keeps
# this safe on machines without it — the kernel falls back to scalar).
cargo build --release --workspace --features simd
cargo test -q --workspace --features simd

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings
cargo clippy --workspace --all-targets --features failpoints -- -D warnings
cargo clippy --workspace --all-targets --features simd -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== store contention smoke (fast profile) =="
# Asserts multi-threaded agreement with uncached ground truth; speed
# numbers are informational in the fast profile.
STORE_BENCH_FAST=1 cargo bench -q -p bench --bench store_contention

echo "== extraction engine smoke (fast profile, scalar) =="
# Asserts the dense engines (fused both kernels, product) and two-pass
# (and naive, on small documents) agree on every bench corpus document;
# timings are informational here.
EXTRACT_BENCH_FAST=1 BENCH_WARMUP_MS=5 BENCH_MEASURE_MS=40 \
  cargo bench -q -p bench --bench extract_throughput

echo "== extraction engine smoke (fast profile, simd) =="
# Same run with the shuffle kernel live: the E13 cross-checks compare
# SIMD-classified scans against the scalar ground truth.
EXTRACT_BENCH_FAST=1 BENCH_WARMUP_MS=5 BENCH_MEASURE_MS=40 \
  cargo bench -q -p bench --bench extract_throughput --features simd

echo "== corpus pipeline smoke (fast profile) =="
# 2 000-page catalog, every tuple cross-checked against ground truth,
# output bytes asserted identical across the worker sweep.
CORPUS_BENCH_FAST=1 cargo bench -q -p bench --bench corpus_throughput

echo "== daemon smoke test =="
scripts/serve_smoke.sh

echo "== pipeline smoke test =="
scripts/pipeline_smoke.sh

echo "== query smoke test =="
scripts/query_smoke.sh

echo "== chaos smoke test =="
scripts/chaos_smoke.sh

echo "== drift smoke test =="
scripts/drift_smoke.sh

echo "All checks passed."
