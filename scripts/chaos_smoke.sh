#!/usr/bin/env bash
# Chaos smoke test: build the CLI with failpoints compiled in, boot the
# daemon with worker panics, a mid-batch panic, and slow extractions
# armed from the command line, hammer it, and confirm the supervisor
# heals the pool (healthz returns to "ok", /metrics shows respawns and
# the absorbed batch panic) before a clean shutdown.
# Uses bash's /dev/tcp so it needs no curl.
# Usage: scripts/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
# Injected worker panics reset connections mid-request; without this the
# resulting SIGPIPE on the /dev/tcp fd would kill the whole script.
trap '' PIPE

echo "== chaos smoke: build with failpoints =="
cargo build --release -p rextract-cli --features failpoints
BIN="target/release/rextract"

WORK="$(mktemp -d)"
OUT="$WORK/serve.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Minimal HTTP client over /dev/tcp: http <METHOD> <PATH> [BODY-FILE].
# Prints status line + body (headers stripped). Tolerates connections the
# server kills mid-flight (a worker panic eats the in-flight request), so
# failures print nothing instead of aborting the script.
http() {
    local method="$1" path="$2" body="" len=0
    if [ $# -ge 3 ]; then body="$(cat "$3")"; len=${#body}; fi
    if ! exec 3<>"/dev/tcp/127.0.0.1/$PORT"; then return 0; fi
    printf '%s %s HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s' \
        "$method" "$path" "$len" "$body" >&3 2>/dev/null || true
    tr -d '\r' <&3 2>/dev/null | awk 'NR==1{print} body{print} /^$/{body=1}' || true
    exec 3<&- 3>&- 2>/dev/null || true
}

echo "== chaos smoke: boot with armed failpoints =="
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --wrapper-dir "$WORK" \
    --fault 'worker.panic.escape=times(4):panic' \
    --fault 'serve.batch.panic=once:panic' \
    --fault 'extract.slow=prob(0.3,42):sleep(30)' >"$OUT" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    grep -q 'listening on' "$OUT" 2>/dev/null && break
    sleep 0.1
done
PORT="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$OUT" | head -1)"
[ -n "$PORT" ] && kill -0 "$SRV_PID" || { echo "daemon failed to boot"; cat "$OUT"; exit 1; }
grep -q 'armed failpoint' "$OUT" || { echo "failpoints were not armed"; cat "$OUT"; exit 1; }
echo "daemon up on port $PORT"

echo "== chaos smoke: install a wrapper =="
cat >"$WORK/sample1.html" <<'HTML'
<p><h1>Shop</h1></p><form><input><input data-target><br><input></form>
HTML
cat >"$WORK/sample2.html" <<'HTML'
<table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input><input data-target><input></form></td></tr></table>
HTML
"$BIN" wrapper-train "$WORK/chaos.wrapper" "$WORK/sample1.html" "$WORK/sample2.html"
# The armed panic failpoint eats whole connections (times(4), any endpoint),
# so the install itself must be retried through the storm.
INSTALLED=0
for attempt in $(seq 1 10); do
    http POST /wrappers/chaos "$WORK/chaos.wrapper" >"$WORK/install.txt" || true
    if grep -q '201 Created' "$WORK/install.txt"; then
        INSTALLED=1
        echo "installed on attempt $attempt"
        break
    fi
    sleep 0.1
done
[ "$INSTALLED" -eq 1 ] || { echo "install never survived the panic storm"; cat "$OUT"; exit 1; }

echo "== chaos smoke: hammer through the panic storm =="
cat >"$WORK/page.html" <<'HTML'
<p><h1>Shop</h1></p><center><form><input><input><br><input></form></center>
HTML
OK=0
for _ in $(seq 1 24); do
    if http POST '/extract?wrapper=chaos' "$WORK/page.html" | grep -q '200 OK'; then
        OK=$((OK + 1))
    fi
done
echo "$OK/24 extractions succeeded despite injected panics and stalls"
# times(4) panics at most: install retries plus the hammer can lose at
# most 4 requests between them.
[ "$OK" -ge 20 ] || { echo "too many extractions lost to the chaos"; cat "$OUT"; exit 1; }

echo "== chaos smoke: supervisor heals the pool =="
HEALED=0
for _ in $(seq 1 50); do
    if http GET /healthz | grep -q '"status":"ok"'; then HEALED=1; break; fi
    sleep 0.1
done
[ "$HEALED" -eq 1 ] || { echo "pool never returned to ok"; http GET /healthz; cat "$OUT"; exit 1; }
http GET /metrics >"$WORK/metrics.txt"
RESPAWNS="$(sed -n 's|.*"respawns":\([0-9]*\).*|\1|p' "$WORK/metrics.txt" | head -1)"
echo "worker respawns: ${RESPAWNS:-0}"
[ -n "$RESPAWNS" ] && [ "$RESPAWNS" -ge 1 ] || { echo "expected >=1 respawn"; cat "$WORK/metrics.txt"; exit 1; }
grep -q '"failpoints":\[' "$WORK/metrics.txt" || { echo "failpoint stats missing from /metrics"; exit 1; }
# The once-armed mid-batch panic must have been absorbed as a single 503
# (client-visible, retried above), never a dropped request or dead worker.
BATCH_FIRES="$(sed -n 's|.*"name":"serve\.batch\.panic","evals":[0-9]*,"fires":\([0-9]*\).*|\1|p' "$WORK/metrics.txt" | head -1)"
echo "mid-batch panics absorbed: ${BATCH_FIRES:-0}"
[ -n "$BATCH_FIRES" ] && [ "$BATCH_FIRES" -eq 1 ] \
    || { echo "expected exactly one serve.batch.panic fire"; cat "$WORK/metrics.txt"; exit 1; }

echo "== chaos smoke: graceful shutdown =="
http POST /shutdown | grep -q '"draining":true'
for _ in $(seq 1 50); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "daemon did not exit after /shutdown"; exit 1
fi
wait "$SRV_PID"
grep -q 'drained; bye' "$OUT"

echo "chaos smoke passed."
