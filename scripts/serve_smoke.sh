#!/usr/bin/env bash
# Daemon smoke test: boot `rextract serve` on an ephemeral port, check
# /healthz, train + install a wrapper, run one extraction over HTTP, and
# shut down gracefully. Uses bash's /dev/tcp so it needs no curl.
# Usage: scripts/serve_smoke.sh [path-to-rextract-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/rextract}"
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release)"; exit 1; }

WORK="$(mktemp -d)"
OUT="$WORK/serve.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Minimal HTTP client over /dev/tcp: http <METHOD> <PATH> [BODY-FILE].
# Prints status line + body (headers stripped).
http() {
    local method="$1" path="$2" body="" len=0
    if [ $# -ge 3 ]; then body="$(cat "$3")"; len=${#body}; fi
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s' \
        "$method" "$path" "$len" "$body" >&3
    tr -d '\r' <&3 | awk 'NR==1{print} body{print} /^$/{body=1}'
    exec 3<&- 3>&-
}

echo "== serve smoke: boot =="
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --wrapper-dir "$WORK" >"$OUT" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    grep -q 'listening on' "$OUT" 2>/dev/null && break
    sleep 0.1
done
PORT="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$OUT" | head -1)"
[ -n "$PORT" ] && kill -0 "$SRV_PID" || { echo "daemon failed to boot"; cat "$OUT"; exit 1; }
echo "daemon up on port $PORT"

echo "== serve smoke: /healthz =="
http GET /healthz | tee "$WORK/health.txt"
grep -q '200 OK' "$WORK/health.txt"
grep -q '"status":"ok"' "$WORK/health.txt"

echo "== serve smoke: train + install a wrapper =="
cat >"$WORK/sample1.html" <<'HTML'
<p><h1>Shop</h1></p><form><input><input data-target><br><input></form>
HTML
cat >"$WORK/sample2.html" <<'HTML'
<table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input><input data-target><input></form></td></tr></table>
HTML
"$BIN" wrapper-train "$WORK/smoke.wrapper" "$WORK/sample1.html" "$WORK/sample2.html"
http POST /wrappers/smoke "$WORK/smoke.wrapper" | tee "$WORK/install.txt"
grep -q '201 Created' "$WORK/install.txt"

echo "== serve smoke: one extraction =="
cat >"$WORK/page.html" <<'HTML'
<p><h1>Shop</h1></p><center><form><input><input><br><input></form></center>
HTML
http POST '/extract?wrapper=smoke' "$WORK/page.html" | tee "$WORK/extract.txt"
grep -q '200 OK' "$WORK/extract.txt"
grep -q '"position":' "$WORK/extract.txt"

echo "== serve smoke: pipelined pair (two requests, one write) =="
# Stage both requests in a file and `cat` it to the socket: bash's
# printf can split its output across several write(2) calls, which
# would de-pipeline the pair into separate segments.
printf 'GET /healthz HTTP/1.1\r\nHost: smoke\r\n\r\nGET /metrics HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n' \
    >"$WORK/pipeline.req"
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
cat "$WORK/pipeline.req" >&3
tr -d '\r' <&3 >"$WORK/pipeline.txt"
exec 3<&- 3>&-
OKS="$(grep -o 'HTTP/1.1 200 OK' "$WORK/pipeline.txt" | wc -l)"
[ "$OKS" -eq 2 ] || { echo "expected 2 pipelined responses, got $OKS"; cat "$WORK/pipeline.txt"; exit 1; }
# The first response must be the healthz body, the second the metrics
# body — in-order responses are the pipelining contract.
awk '/"status"/{h=NR} /"pipelined_requests"/{m=NR} END{exit !(h && m && h<m)}' "$WORK/pipeline.txt" \
    || { echo "pipelined responses out of order"; cat "$WORK/pipeline.txt"; exit 1; }
PIPELINED="$(sed -n 's|.*"pipelined_requests":\([0-9]*\).*|\1|p' "$WORK/pipeline.txt" | head -1)"
[ -n "$PIPELINED" ] && [ "$PIPELINED" -ge 1 ] \
    || { echo "daemon did not count the pipelined pair"; cat "$WORK/pipeline.txt"; exit 1; }
echo "both pipelined responses arrived in order ($PIPELINED pipelined requests counted)"

echo "== serve smoke: graceful shutdown =="
http POST /shutdown | grep -q '"draining":true'
for _ in $(seq 1 50); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "daemon did not exit after /shutdown"; exit 1
fi
wait "$SRV_PID"
grep -q 'drained; bye' "$OUT"

echo "serve smoke passed."
