#!/usr/bin/env bash
# Corpus pipeline smoke test: train a wrapper with the real binary, run
# `rextract pipeline` over a small synthetic corpus at two worker counts,
# and assert (a) every page is accounted for — tuples out, unroutable
# pages in the sidecar, nothing dropped — and (b) the output bytes are
# identical across worker counts (the reorder buffer's ordering contract).
# Usage: scripts/pipeline_smoke.sh [path-to-rextract-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/rextract}"
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release)"; exit 1; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
mkdir -p "$WORK/wrappers" "$WORK/corpus"

echo "== pipeline smoke: train a wrapper =="
cat >"$WORK/sample1.html" <<'HTML'
<p><h1>Shop</h1></p><form><input><input data-target><br><input></form>
HTML
cat >"$WORK/sample2.html" <<'HTML'
<table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input><input data-target><input></form></td></tr></table>
HTML
"$BIN" wrapper-train "$WORK/wrappers/smoke.wrapper" "$WORK/sample1.html" "$WORK/sample2.html"

echo "== pipeline smoke: synthesize a corpus (5 routable pages + 1 unroutable) =="
# Variants of the training template family — same skeleton shapes the
# wrapper generalized over, different text and decoration.
cat >"$WORK/corpus/p0.html" <<'HTML'
<p><h1>Books</h1></p><form><input><input><br><input></form>
HTML
cat >"$WORK/corpus/p1.html" <<'HTML'
<p><h1>Music</h1></p><center><form><input><input><br><input></form></center>
HTML
cat >"$WORK/corpus/p2.html" <<'HTML'
<table><tr><td><h1>Games</h1></td></tr><tr><td><form><input><input><input></form></td></tr></table>
HTML
cat >"$WORK/corpus/p3.html" <<'HTML'
<p><h1>Tools</h1></p><form><input><input><br><input></form>
HTML
cat >"$WORK/corpus/p4.html" <<'HTML'
<table><tr><td><h1>Garden</h1></td></tr><tr><td><form><input><input><input></form></td></tr></table>
HTML
# No form at all: no wrapper can extract it, so it must land in the
# sidecar — never be silently dropped.
cat >"$WORK/corpus/p5.html" <<'HTML'
<blink>nothing to extract here</blink>
HTML

run() { # run <workers> <tag>
    "$BIN" pipeline --wrappers "$WORK/wrappers" --corpus "$WORK/corpus" \
        --workers "$1" --out "$WORK/out.$2" --unrouted "$WORK/side.$2" \
        2>"$WORK/summary.$2"
    cat "$WORK/summary.$2"
}

echo "== pipeline smoke: run at --workers 1 and --workers 4 =="
run 1 w1
run 4 w4

echo "== pipeline smoke: accounting =="
TUPLES="$(grep -c '"fields":' "$WORK/out.w1")"
SIDE="$(grep -c '"error":"unrouted"' "$WORK/side.w1")"
TOTAL=$(( $(wc -l <"$WORK/out.w1") + $(wc -l <"$WORK/side.w1") ))
[ "$TUPLES" -eq 5 ] || { echo "expected 5 tuples, got $TUPLES"; cat "$WORK/out.w1"; exit 1; }
[ "$SIDE" -eq 1 ] || { echo "expected 1 unrouted page, got $SIDE"; cat "$WORK/side.w1"; exit 1; }
[ "$TOTAL" -eq 6 ] || { echo "expected 6 accounted lines, got $TOTAL"; exit 1; }
grep -q '"wrapper":"smoke"' "$WORK/out.w1"
grep -q '"wrapper_version":' "$WORK/out.w1"
grep -q '"source":' "$WORK/out.w1"
grep -q 'p5.html' "$WORK/side.w1"
grep -q 'pages 6 ok 5' "$WORK/summary.w1"
echo "5 tuples + 1 sidecar line, provenance fields present"

echo "== pipeline smoke: deterministic order across worker counts =="
cmp "$WORK/out.w1" "$WORK/out.w4" \
    || { echo "tuple stream diverged between worker counts"; exit 1; }
cmp "$WORK/side.w1" "$WORK/side.w4" \
    || { echo "sidecar diverged between worker counts"; exit 1; }
# Pages must come out in corpus order regardless of which worker
# finished first.
for i in 0 1 2 3 4; do
    LINE="$(sed -n "$((i + 1))p" "$WORK/out.w1")"
    case "$LINE" in
        *"p$i.html"*) ;;
        *) echo "line $((i + 1)) is not p$i.html: $LINE"; exit 1 ;;
    esac
done
echo "output byte-identical and in corpus order"

echo "pipeline smoke passed."
