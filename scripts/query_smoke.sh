#!/usr/bin/env bash
# Span-relational query smoke test: train + install a wrapper, install a
# two-source join query (wrapper ⋈ inline expression with a `before`
# predicate), evaluate it over HTTP under both join strategies and assert
# the records are byte-identical, then run the same query offline through
# `rextract query` and check the byte-offset provenance lines. Uses
# bash's /dev/tcp so it needs no curl.
# Usage: scripts/query_smoke.sh [path-to-rextract-binary]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-target/release/rextract}"
[ -x "$BIN" ] || { echo "error: $BIN not built (run cargo build --release)"; exit 1; }

WORK="$(mktemp -d)"
OUT="$WORK/serve.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Minimal HTTP client over /dev/tcp: http <METHOD> <PATH> [BODY-FILE].
# Prints status line + body (headers stripped).
http() {
    local method="$1" path="$2" body="" len=0
    if [ $# -ge 3 ]; then body="$(cat "$3")"; len=${#body}; fi
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s' \
        "$method" "$path" "$len" "$body" >&3
    tr -d '\r' <&3 | awk 'NR==1{print} body{print} /^$/{body=1}'
    exec 3<&- 3>&-
}

echo "== query smoke: boot =="
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --wrapper-dir "$WORK" >"$OUT" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    grep -q 'listening on' "$OUT" 2>/dev/null && break
    sleep 0.1
done
PORT="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$OUT" | head -1)"
[ -n "$PORT" ] && kill -0 "$SRV_PID" || { echo "daemon failed to boot"; cat "$OUT"; exit 1; }
echo "daemon up on port $PORT"

echo "== query smoke: train + install the wrapper source =="
cat >"$WORK/sample1.html" <<'HTML'
<p><h1>Shop</h1></p><form><input><input data-target><br><input></form>
HTML
cat >"$WORK/sample2.html" <<'HTML'
<table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input><input data-target><input></form></td></tr></table>
HTML
"$BIN" wrapper-train "$WORK/smoke.wrapper" "$WORK/sample1.html" "$WORK/sample2.html"
http POST /wrappers/smoke "$WORK/smoke.wrapper" | tee "$WORK/install.txt"
grep -q '201 Created' "$WORK/install.txt"

echo "== query smoke: install a two-source join query =="
cat >"$WORK/pair.json" <<'JSON'
{
  "sources": [
    {"var": "field", "wrapper": "smoke"},
    {"var": "form", "alphabet": "FORM /FORM", "expr": "[^FORM]* <FORM> .*"}
  ],
  "plan": {
    "op": "join",
    "left": {"op": "leaf", "var": "form"},
    "right": {"op": "leaf", "var": "field"},
    "preds": [{"pred": "before", "left": "form", "right": "field"}]
  }
}
JSON
http POST /queries/pair "$WORK/pair.json" | tee "$WORK/qinstall.txt"
grep -q '201 Created' "$WORK/qinstall.txt"
grep -q '"sources":2' "$WORK/qinstall.txt"
http GET /queries | grep -q '"pair"'

echo "== query smoke: evaluate under both join strategies =="
cat >"$WORK/page.html" <<'HTML'
<p><h1>Shop</h1></p><center><form><input><input><br><input></form></center>
HTML
http POST '/query?query=pair' "$WORK/page.html" | tee "$WORK/merge.txt"
grep -q '200 OK' "$WORK/merge.txt"
grep -q '"strategy":"sort-merge"' "$WORK/merge.txt"
grep -q '"form":{' "$WORK/merge.txt"
grep -q '"field":{' "$WORK/merge.txt"
grep -q '<form' "$WORK/merge.txt"
ROWS="$(sed -n 's|.*"rows":\([0-9]*\).*|\1|p' "$WORK/merge.txt" | head -1)"
[ -n "$ROWS" ] && [ "$ROWS" -ge 1 ] || { echo "join produced no rows"; cat "$WORK/merge.txt"; exit 1; }
http POST '/query?query=pair&strategy=nested-loop' "$WORK/page.html" >"$WORK/nested.txt"
grep -q '200 OK' "$WORK/nested.txt"
# The records array (everything before the timing field) must be
# byte-identical across strategies — canonical form is the contract.
records() { sed -n 's|.*"records":\(.*\),"tokens".*|\1|p' "$1"; }
[ -n "$(records "$WORK/merge.txt")" ] || { echo "no records array in response"; exit 1; }
if [ "$(records "$WORK/merge.txt")" != "$(records "$WORK/nested.txt")" ]; then
    echo "strategies disagree:"; records "$WORK/merge.txt"; records "$WORK/nested.txt"; exit 1
fi
echo "sort-merge and nested-loop returned byte-identical records ($ROWS rows)"

echo "== query smoke: per-query metrics =="
http GET /metrics | tee "$WORK/metrics.txt" | grep -q '"pair":{"evaluations":2'

echo "== query smoke: offline rextract query =="
"$BIN" query --wrappers "$WORK" "$WORK/pair.json" "$WORK/page.html" >"$WORK/cli.out" 2>"$WORK/cli.err"
grep -q '"query":"pair"' "$WORK/cli.out"
grep -q '"vars":\["form","field"\]' "$WORK/cli.out"
grep -q '"byte_offsets":' "$WORK/cli.out"
grep -q '<form' "$WORK/cli.out"
"$BIN" query --wrappers "$WORK" --strategy nested-loop "$WORK/pair.json" "$WORK/page.html" >"$WORK/cli2.out" 2>/dev/null
cmp "$WORK/cli.out" "$WORK/cli2.out" || { echo "CLI strategies disagree"; exit 1; }
echo "offline query output byte-identical across strategies"

echo "== query smoke: graceful shutdown =="
http POST /shutdown | grep -q '"draining":true'
for _ in $(seq 1 50); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "daemon did not exit after /shutdown"; exit 1
fi
wait "$SRV_PID"

echo "query smoke passed."
