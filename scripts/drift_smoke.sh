#!/usr/bin/env bash
# Drift smoke test: boot the real binary with drift detection tightened
# and a mid-repair panic armed, serve good traffic, then hit it with a
# site redesign (the <h1> header replaced by an <img> banner) until the
# wrapper drifts. Asserts the full loop on /metrics: detection (flagged,
# healthz degraded) → repair (first attempt dies on the armed panic,
# retry succeeds) → recovery (the redesigned pages now extract, good
# pages still do, healthz back to ok).
# Uses bash's /dev/tcp so it needs no curl.
# Usage: scripts/drift_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."
trap '' PIPE

echo "== drift smoke: build with failpoints =="
cargo build --release -p rextract-cli --features failpoints
BIN="target/release/rextract"

WORK="$(mktemp -d)"
OUT="$WORK/serve.log"
trap 'kill "$SRV_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

# Minimal HTTP client over /dev/tcp: http <METHOD> <PATH> [BODY-FILE].
http() {
    local method="$1" path="$2" body="" len=0
    if [ $# -ge 3 ]; then body="$(cat "$3")"; len=${#body}; fi
    if ! exec 3<>"/dev/tcp/127.0.0.1/$PORT"; then return 0; fi
    printf '%s %s HTTP/1.1\r\nHost: drift\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s' \
        "$method" "$path" "$len" "$body" >&3 2>/dev/null || true
    tr -d '\r' <&3 2>/dev/null | awk 'NR==1{print} body{print} /^$/{body=1}' || true
    exec 3<&- 3>&- 2>/dev/null || true
}

# Pull an integer counter out of a saved /metrics body.
metric() { sed -n "s|.*\"$1\":\([0-9]*\).*|\1|p" "$2" | head -1; }

echo "== drift smoke: train the original wrapper =="
cat >"$WORK/s1.html" <<'HTML'
<p><h1>Shop</h1></p><form><input><input data-target><br><input></form>
HTML
cat >"$WORK/s2.html" <<'HTML'
<table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input><input data-target><input></form></td></tr></table>
HTML
"$BIN" wrapper-train "$WORK/drift.wrapper" "$WORK/s1.html" "$WORK/s2.html"

# Good traffic: the trained layouts without the training annotation.
cat >"$WORK/good1.html" <<'HTML'
<p><h1>Shop</h1></p><form><input><input><br><input></form>
HTML
cat >"$WORK/good2.html" <<'HTML'
<table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input><input><input></form></td></tr></table>
HTML

# The redesign: the <h1> header the wrapper anchors on is gone, replaced
# by an <img> banner. Four variants; every one must fail the old wrapper
# (pre-checked below) so the daemon's drift window fills deterministically.
for i in 1 2 3 4; do
    cat >"$WORK/drift$i.html" <<HTML
<div><img src="logo$i.gif"></div><form><input><input><br><input></form>
HTML
    if "$BIN" wrapper-extract "$WORK/drift.wrapper" "$WORK/drift$i.html" >/dev/null 2>&1; then
        echo "drift$i.html unexpectedly extracts with the old wrapper"; exit 1
    fi
done

echo "== drift smoke: boot with drift detection and a mid-repair panic armed =="
mkdir "$WORK/registry"
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --wrapper-dir "$WORK/registry" \
    --drift-window 8 --drift-threshold 0.5 --repair-backoff-ms 50 \
    --fault 'serve.repair.train=once:panic' >"$OUT" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 50); do
    grep -q 'listening on' "$OUT" 2>/dev/null && break
    sleep 0.1
done
PORT="$(sed -n 's|.*listening on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$OUT" | head -1)"
[ -n "$PORT" ] && kill -0 "$SRV_PID" || { echo "daemon failed to boot"; cat "$OUT"; exit 1; }
echo "daemon up on port $PORT"

http POST /wrappers/drift "$WORK/drift.wrapper" | grep -q '201 Created' \
    || { echo "wrapper install failed"; cat "$OUT"; exit 1; }

echo "== drift smoke: good traffic, then the redesign =="
for i in 1 2 3 4; do
    PAGE="$WORK/good$(( (i + 1) % 2 + 1 )).html"
    http POST '/extract?wrapper=drift' "$PAGE" | grep -q '200 OK' \
        || { echo "good page $i did not extract"; cat "$OUT"; exit 1; }
done
for i in 1 2 3 4; do
    http POST '/extract?wrapper=drift' "$WORK/drift$i.html" | grep -q '422' \
        || { echo "drifted page $i should have failed extraction"; cat "$OUT"; exit 1; }
done

echo "== drift smoke: detection =="
http GET /metrics >"$WORK/m1.txt"
[ "$(metric flagged "$WORK/m1.txt")" = "1" ] \
    || { echo "drift was not flagged"; cat "$WORK/m1.txt"; exit 1; }
http GET /healthz | grep -q '"status":"degraded"' \
    || { echo "healthz should be degraded while drifted"; exit 1; }
echo "drift flagged; wrapper degraded"

echo "== drift smoke: repair (first attempt panics, retry heals) =="
HEALED=0
for _ in $(seq 1 150); do
    http GET /metrics >"$WORK/m2.txt"
    if [ "$(metric repairs_succeeded "$WORK/m2.txt")" = "1" ]; then HEALED=1; break; fi
    sleep 0.1
done
[ "$HEALED" -eq 1 ] || { echo "repair never succeeded"; cat "$WORK/m2.txt"; cat "$OUT"; exit 1; }
ATTEMPTED="$(metric repairs_attempted "$WORK/m2.txt")"
FAILED="$(metric repairs_failed "$WORK/m2.txt")"
echo "repair attempts: $ATTEMPTED (failed $FAILED, succeeded 1)"
# The armed panic must have burned at least the first attempt, and the
# ledger must reconcile exactly: every attempt either failed or healed.
[ "$ATTEMPTED" -ge 2 ] || { echo "expected >=2 attempts (panic + retry)"; cat "$WORK/m2.txt"; exit 1; }
[ "$FAILED" -ge 1 ] || { echo "expected >=1 failed attempt from the panic"; cat "$WORK/m2.txt"; exit 1; }
[ "$ATTEMPTED" -eq $((FAILED + 1)) ] \
    || { echo "attempt ledger does not reconcile"; cat "$WORK/m2.txt"; exit 1; }

echo "== drift smoke: recovered accuracy =="
# The healed wrapper serves the redesigned pages (bumped revision) and
# still serves the original layouts.
http POST '/extract?wrapper=drift' "$WORK/drift1.html" >"$WORK/healed.txt"
grep -q '200 OK' "$WORK/healed.txt" || { echo "healed wrapper rejects redesigned page"; cat "$WORK/healed.txt"; exit 1; }
grep -q '"wrapper_revision":2' "$WORK/healed.txt" \
    || { echo "expected revision 2 after repair"; cat "$WORK/healed.txt"; exit 1; }
http POST '/extract?wrapper=drift' "$WORK/good1.html" | grep -q '200 OK' \
    || { echo "healed wrapper regressed on good pages"; cat "$OUT"; exit 1; }
http GET /healthz | grep -q '"status":"ok"' \
    || { echo "healthz should be ok after repair"; exit 1; }
echo "redesigned pages extract at revision 2; good pages unaffected"

echo "== drift smoke: graceful shutdown =="
http POST /shutdown | grep -q '"draining":true'
for _ in $(seq 1 50); do
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$SRV_PID" 2>/dev/null && { echo "daemon did not exit after /shutdown"; exit 1; }
wait "$SRV_PID"
grep -q 'drained; bye' "$OUT"

echo "drift smoke passed."
